//! Data-parallel execution layer for the collection-shaped protocol loops.
//!
//! Every per-item hot loop in the workspace (per-user aggregation, per-label
//! rerandomization, per-bit DGK witnesses, pairwise compare fan-out) funnels
//! through [`Parallelism`], a small engine-owned splitter built on
//! `std::thread::scope`. Two invariants shape the design:
//!
//! 1. **Bit-identical to sequential.** Randomized loops never share an RNG
//!    across a split. [`Parallelism::map_seeded`] draws one `u64` seed per
//!    item from the caller's RNG *sequentially up front*, then hands each
//!    item its own `StdRng` derived from its seed. The sequential path
//!    (`threads == 1`, or a batch below [`Parallelism::min_batch`]) uses the
//!    exact same derivation, so outputs do not depend on the thread count.
//! 2. **Deterministic errors.** [`Parallelism::try_map`] evaluates every
//!    item but always reports the error with the lowest index, matching what
//!    a sequential early-exit loop would have returned.
//!
//! No work-stealing and no persistent pool: batches are split into one
//! contiguous chunk per worker and joined in index order. The protocol's
//! batches are uniform-cost (fixed-width modular exponentiations), so static
//! chunking loses nothing to stealing and keeps the fan-out auditable.
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default minimum batch size before a loop is split across workers.
///
/// Below this, thread spawn/join overhead dominates the per-item modular
/// arithmetic and the batch runs on the calling thread.
pub const DEFAULT_MIN_BATCH: usize = 4;

/// Minimum amount of work (in estimated nanoseconds) a worker's chunk
/// must carry before spawning it pays off.
///
/// Spawning and joining one scoped thread costs on the order of tens of
/// microseconds; a chunk needs several times that in real work for the
/// split to win. Callers that know their per-item cost pass it via
/// [`Parallelism::with_item_cost_ns`] and [`Parallelism::workers_for`]
/// then derives the effective worker count from this floor — the
/// auto-tuned replacement for hand-picking `min_batch` per call site.
pub const SPLIT_MIN_WORK_NS: u64 = 100_000;

/// Environment variable consulted by [`Parallelism::from_env`].
pub const THREADS_ENV: &str = "CONSENSUS_THREADS";

/// Degree of data parallelism for the crypto hot loops.
///
/// `threads == 1` is the sequential fallback: no threads are spawned and
/// every loop runs in deterministic index order on the calling thread.
/// Because randomized loops derive per-item RNG streams from pre-drawn
/// seeds (see [`Parallelism::map_seeded`]), results are bit-identical for
/// every `threads` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
    min_batch: usize,
    /// Estimated per-item cost in nanoseconds, when the call site knows
    /// it; `None` preserves the plain `threads.min(n)` split.
    item_cost_ns: Option<u64>,
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::sequential()
    }
}

impl Parallelism {
    /// Sequential execution: all loops run on the calling thread.
    pub fn sequential() -> Self {
        Self { threads: 1, min_batch: DEFAULT_MIN_BATCH, item_cost_ns: None }
    }

    /// Use up to `threads` worker threads per batch (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1), min_batch: DEFAULT_MIN_BATCH, item_cost_ns: None }
    }

    /// Set the minimum batch size before a loop is split (clamped to ≥ 1).
    pub fn with_min_batch(mut self, min_batch: usize) -> Self {
        self.min_batch = min_batch.max(1);
        self
    }

    /// Declare the estimated per-item cost of the upcoming loop, in
    /// nanoseconds. [`Parallelism::workers_for`] then spawns only as many
    /// workers as [`SPLIT_MIN_WORK_NS`]-sized chunks of work exist, so
    /// cheap loops (a modular multiplication per item) stop paying thread
    /// spawn/join overhead for no speedup. `0` clears the hint.
    ///
    /// `Parallelism` is `Copy`: call sites apply the hint on a by-value
    /// copy right before the loop without touching the shared config.
    pub fn with_item_cost_ns(mut self, ns: u64) -> Self {
        self.item_cost_ns = if ns == 0 { None } else { Some(ns) };
        self
    }

    /// Read the thread count from `CONSENSUS_THREADS`.
    ///
    /// Unset or unparsable values mean sequential; `0` means "one worker per
    /// available hardware thread".
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV) {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(0) => {
                    Self::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
                }
                Ok(n) => Self::new(n),
                Err(_) => Self::sequential(),
            },
            Err(_) => Self::sequential(),
        }
    }

    /// Configured worker-thread ceiling.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Minimum batch size before a loop is split across workers.
    pub fn min_batch(&self) -> usize {
        self.min_batch
    }

    /// Number of workers a batch of `n` items will actually use.
    ///
    /// With an [`Parallelism::with_item_cost_ns`] hint, the count is
    /// additionally capped so every worker's chunk carries at least
    /// [`SPLIT_MIN_WORK_NS`] of estimated work. The hint only changes how
    /// a batch is chunked — outputs are split-invariant by construction,
    /// so results stay bit-identical with or without it.
    pub fn workers_for(&self, n: usize) -> usize {
        if self.threads <= 1 || n < self.min_batch {
            return 1;
        }
        let mut workers = self.threads.min(n);
        if let Some(cost) = self.item_cost_ns {
            let total = n as u128 * cost as u128;
            let by_cost = (total / SPLIT_MIN_WORK_NS as u128).min(usize::MAX as u128) as usize;
            workers = workers.min(by_cost.max(1));
        }
        workers
    }

    /// Apply `f` to every item, returning outputs in index order.
    ///
    /// `f` receives the item's global index alongside the item.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let workers = self.workers_for(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let chunk = items.len().div_ceil(workers);
        let mut out = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .enumerate()
                .map(|(c, part)| {
                    let f = &f;
                    scope.spawn(move || {
                        let base = c * chunk;
                        part.iter()
                            .enumerate()
                            .map(|(i, item)| f(base + i, item))
                            .collect::<Vec<U>>()
                    })
                })
                .collect();
            for handle in handles {
                out.extend(handle.join().expect("parallel worker panicked"));
            }
        });
        out
    }

    /// Fallible [`Parallelism::map`].
    ///
    /// All items are evaluated, but the returned error is always the one
    /// with the lowest index — the same error a sequential early-exit loop
    /// would have produced.
    pub fn try_map<T, U, E, F>(&self, items: &[T], f: F) -> Result<Vec<U>, E>
    where
        T: Sync,
        U: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<U, E> + Sync,
    {
        let workers = self.workers_for(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let chunk = items.len().div_ceil(workers);
        let mut out = Vec::with_capacity(items.len());
        std::thread::scope(|scope| -> Result<(), E> {
            let handles: Vec<_> = items
                .chunks(chunk)
                .enumerate()
                .map(|(c, part)| {
                    let f = &f;
                    scope.spawn(move || {
                        let base = c * chunk;
                        let mut done = Vec::with_capacity(part.len());
                        for (i, item) in part.iter().enumerate() {
                            match f(base + i, item) {
                                Ok(v) => done.push(v),
                                Err(e) => return Err(e),
                            }
                        }
                        Ok(done)
                    })
                })
                .collect();
            // Chunks are contiguous and ascending, so the first chunk (in
            // order) that failed holds the lowest-index error.
            for handle in handles {
                match handle.join().expect("parallel worker panicked") {
                    Ok(part) => out.extend(part),
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })?;
        Ok(out)
    }

    /// Randomized map: one independent `StdRng` stream per item.
    ///
    /// Draws `items.len()` seeds from `rng` sequentially, then applies `f`
    /// with a fresh `StdRng` seeded from the item's own seed. The caller's
    /// RNG advances by exactly `items.len()` draws regardless of the thread
    /// count, and per-item streams never interleave — this is what makes
    /// parallel output bit-identical to sequential.
    pub fn map_seeded<T, U, F, R>(&self, items: &[T], rng: &mut R, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T, &mut StdRng) -> U + Sync,
        R: Rng + ?Sized,
    {
        let seeds: Vec<u64> = (0..items.len()).map(|_| rng.gen()).collect();
        self.map(items, |i, item| {
            let mut item_rng = StdRng::seed_from_u64(seeds[i]);
            f(i, item, &mut item_rng)
        })
    }

    /// Fallible [`Parallelism::map_seeded`] with lowest-index-error
    /// semantics.
    pub fn try_map_seeded<T, U, E, F, R>(&self, items: &[T], rng: &mut R, f: F) -> Result<Vec<U>, E>
    where
        T: Sync,
        U: Send,
        E: Send,
        F: Fn(usize, &T, &mut StdRng) -> Result<U, E> + Sync,
        R: Rng + ?Sized,
    {
        let seeds: Vec<u64> = (0..items.len()).map(|_| rng.gen()).collect();
        self.try_map(items, |i, item| {
            let mut item_rng = StdRng::seed_from_u64(seeds[i]);
            f(i, item, &mut item_rng)
        })
    }

    /// Index-only [`Parallelism::map`]: apply `f` to `0..n`.
    pub fn map_n<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let indices: Vec<usize> = (0..n).collect();
        self.map(&indices, |_, &i| f(i))
    }

    /// Index-only [`Parallelism::map_seeded`]: apply `f` to `0..n` with one
    /// independent RNG stream per index.
    pub fn map_n_seeded<U, F, R>(&self, n: usize, rng: &mut R, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize, &mut StdRng) -> U + Sync,
        R: Rng + ?Sized,
    {
        let indices: Vec<usize> = (0..n).collect();
        self.map_seeded(&indices, rng, |_, &i, item_rng| f(i, item_rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential() {
        let par = Parallelism::default();
        assert_eq!(par.threads(), 1);
        assert_eq!(par.workers_for(1000), 1);
    }

    #[test]
    fn worker_count_respects_min_batch_and_len() {
        let par = Parallelism::new(4).with_min_batch(8);
        assert_eq!(par.workers_for(7), 1, "below min_batch stays sequential");
        assert_eq!(par.workers_for(8), 4);
        assert_eq!(par.workers_for(3), 1);
        let wide = Parallelism::new(16).with_min_batch(1);
        assert_eq!(wide.workers_for(5), 5, "never more workers than items");
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Parallelism::new(0).threads(), 1);
    }

    #[test]
    fn item_cost_hint_caps_workers_by_chunk_work() {
        let par = Parallelism::new(8).with_min_batch(1);
        // 32 items at 1µs each = 32µs total: below one SPLIT_MIN_WORK_NS
        // chunk, so the loop stays sequential.
        assert_eq!(par.with_item_cost_ns(1_000).workers_for(32), 1);
        // 32 items at 10µs each = 320µs: three full chunks of work.
        assert_eq!(par.with_item_cost_ns(10_000).workers_for(32), 3);
        // Expensive items saturate the configured thread ceiling.
        assert_eq!(par.with_item_cost_ns(1_000_000).workers_for(32), 8);
        // No hint (or a cleared hint) preserves the plain split.
        assert_eq!(par.workers_for(32), 8);
        assert_eq!(par.with_item_cost_ns(1_000).with_item_cost_ns(0).workers_for(32), 8);
    }

    #[test]
    fn item_cost_hint_keeps_outputs_identical() {
        let items: Vec<u64> = (0..57).collect();
        let mut with_hint_rng = StdRng::seed_from_u64(7);
        let mut plain_rng = StdRng::seed_from_u64(7);
        let hinted = Parallelism::new(4).with_min_batch(1).with_item_cost_ns(50_000);
        let plain = Parallelism::new(4).with_min_batch(1);
        let a: Vec<u64> = hinted
            .map_seeded(&items, &mut with_hint_rng, |_, &x, item_rng| x ^ item_rng.gen::<u64>());
        let b: Vec<u64> =
            plain.map_seeded(&items, &mut plain_rng, |_, &x, item_rng| x ^ item_rng.gen::<u64>());
        assert_eq!(a, b);
    }

    #[test]
    fn map_preserves_index_order() {
        let items: Vec<u64> = (0..103).collect();
        let seq: Vec<u64> = Parallelism::sequential().map(&items, |i, &x| x * 3 + i as u64);
        let par: Vec<u64> =
            Parallelism::new(4).with_min_batch(1).map(&items, |i, &x| x * 3 + i as u64);
        assert_eq!(seq, par);
        assert_eq!(seq[10], 10 * 3 + 10);
    }

    #[test]
    fn map_handles_empty_and_tiny_batches() {
        let par = Parallelism::new(8);
        let empty: Vec<u32> = par.map(&[] as &[u32], |_, &x| x);
        assert!(empty.is_empty());
        let one = par.map(&[7u32], |i, &x| x + i as u32);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn try_map_reports_lowest_index_error() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 2, 4, 8] {
            let par = Parallelism::new(threads).with_min_batch(1);
            let got: Result<Vec<usize>, usize> =
                par.try_map(&items, |i, &x| if x % 7 == 3 { Err(i) } else { Ok(x) });
            assert_eq!(got, Err(3), "threads={threads}");
        }
    }

    #[test]
    fn try_map_succeeds_in_order() {
        let items: Vec<usize> = (0..33).collect();
        let par = Parallelism::new(4).with_min_batch(1);
        let got: Result<Vec<usize>, ()> = par.try_map(&items, |_, &x| Ok(x * x));
        assert_eq!(got.unwrap(), items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn map_seeded_is_thread_count_invariant() {
        let items: Vec<u64> = (0..41).collect();
        let mut outputs = Vec::new();
        for threads in [1, 2, 3, 8] {
            let par = Parallelism::new(threads).with_min_batch(1);
            let mut rng = StdRng::seed_from_u64(0xD15EA5E);
            let out: Vec<u64> =
                par.map_seeded(&items, &mut rng, |_, &x, item_rng| x ^ item_rng.gen::<u64>());
            // The caller RNG must advance identically too.
            let tail: u64 = rng.gen();
            outputs.push((out, tail));
        }
        for pair in outputs.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn map_n_seeded_matches_manual_derivation() {
        let par = Parallelism::new(4).with_min_batch(1);
        let mut rng = StdRng::seed_from_u64(99);
        let out = par.map_n_seeded(5, &mut rng, |i, item_rng| (i as u64) + item_rng.gen::<u64>());

        let mut manual_rng = StdRng::seed_from_u64(99);
        let seeds: Vec<u64> = (0..5).map(|_| manual_rng.gen()).collect();
        let manual: Vec<u64> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u64) + StdRng::seed_from_u64(s).gen::<u64>())
            .collect();
        assert_eq!(out, manual);
    }
}
