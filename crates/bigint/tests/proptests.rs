//! Property-based tests for the bigint substrate, checked against `u128`
//! reference arithmetic and against algebraic identities for multi-limb
//! values.

use std::sync::Arc;

use bigint::gcd::{extended_gcd, gcd, lcm, modinv};
use bigint::modular::{modadd, modmul, modpow, modpow_basic, modsub};
use bigint::montgomery::{CachedContext, FixedBaseTable, MontgomeryContext};
use bigint::{Ibig, Ubig};
use proptest::prelude::*;

/// Strategy for an arbitrary multi-limb Ubig (0..2^256).
fn ubig() -> impl Strategy<Value = Ubig> {
    proptest::collection::vec(any::<u64>(), 0..4).prop_map(Ubig::from_limbs)
}

/// Strategy for a non-zero Ubig.
fn ubig_nonzero() -> impl Strategy<Value = Ubig> {
    ubig().prop_filter("non-zero", |v| !v.is_zero())
}

/// Strategy for an odd Montgomery-compatible modulus > 1, from a single
/// limb up to four limbs so the single-limb REDC path is exercised too.
fn odd_modulus() -> impl Strategy<Value = Ubig> {
    proptest::collection::vec(any::<u64>(), 1..4)
        .prop_map(|limbs| {
            let mut m = Ubig::from_limbs(limbs);
            m.set_bit(0, true);
            m
        })
        .prop_filter("> 1", |m| m > &Ubig::one())
}

/// Exponent strategy that keeps zero and tiny values likely while still
/// reaching multi-limb sizes.
fn exponent() -> impl Strategy<Value = Ubig> {
    proptest::collection::vec(any::<u64>(), 0..4).prop_map(|limbs| match limbs.len() {
        0 => Ubig::zero(),
        // Half the single-limb draws collapse to a tiny exponent (0..=3)
        // so exp = 0 and exp = 1 stay likely.
        1 if limbs[0] % 2 == 0 => Ubig::from((limbs[0] / 2) % 4),
        _ => Ubig::from_limbs(limbs),
    })
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = a as u128 + b as u128;
        prop_assert_eq!((&Ubig::from(a) + &Ubig::from(b)).to_u128(), Some(sum));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = a as u128 * b as u128;
        prop_assert_eq!((&Ubig::from(a) * &Ubig::from(b)).to_u128(), Some(prod));
    }

    #[test]
    fn divrem_matches_u128(a in any::<u128>(), b in 1u128..) {
        let (q, r) = Ubig::from(a).div_rem(&Ubig::from(b));
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    #[test]
    fn add_commutative_associative(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutative_associative(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn mul_distributes(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn sub_inverts_add(a in ubig(), b in ubig()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn divrem_reconstructs(a in ubig(), b in ubig_nonzero()) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shifts_roundtrip(a in ubig(), s in 0u32..200) {
        prop_assert_eq!(&(&a << s) >> s, a);
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in ubig(), s in 0u32..100) {
        let pow = Ubig::one() << s;
        prop_assert_eq!(&a << s, &a * &pow);
    }

    #[test]
    fn decimal_roundtrip(a in ubig()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Ubig>().unwrap(), a);
    }

    #[test]
    fn hex_roundtrip(a in ubig()) {
        let s = a.to_str_radix(16);
        prop_assert_eq!(Ubig::from_str_radix(&s, 16).unwrap(), a);
    }

    #[test]
    fn bytes_roundtrip(a in ubig()) {
        prop_assert_eq!(Ubig::from_le_bytes(&a.to_le_bytes()), a);
    }

    #[test]
    fn gcd_divides_both(a in ubig_nonzero(), b in ubig_nonzero()) {
        let g = gcd(&a, &b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
    }

    #[test]
    fn gcd_lcm_product(a in 1u64.., b in 1u64..) {
        let (ba, bb) = (Ubig::from(a), Ubig::from(b));
        prop_assert_eq!(&gcd(&ba, &bb) * &lcm(&ba, &bb), &ba * &bb);
    }

    #[test]
    fn bezout_identity(a in ubig_nonzero(), b in ubig_nonzero()) {
        let (g, x, y) = extended_gcd(&a, &b);
        let lhs = &(&Ibig::from(a) * &x) + &(&Ibig::from(b) * &y);
        prop_assert_eq!(lhs, Ibig::from(g));
    }

    #[test]
    fn modinv_multiplies_to_one(a in 1u64.., ) {
        // Prime modulus guarantees invertibility of non-multiples.
        let m = Ubig::from(4_294_967_311u64); // prime > 2^32
        let a = Ubig::from(a);
        if (&a % &m).is_zero() { return Ok(()); }
        let inv = modinv(&a, &m).unwrap();
        prop_assert_eq!(modmul(&a, &inv, &m), Ubig::one());
    }

    #[test]
    fn modpow_adds_exponents(base in ubig_nonzero(), e1 in 0u64..64, e2 in 0u64..64, m in 2u64..) {
        let m = Ubig::from(m);
        let lhs = modpow(&base, &Ubig::from(e1 + e2), &m);
        let rhs = modmul(
            &modpow(&base, &Ubig::from(e1), &m),
            &modpow(&base, &Ubig::from(e2), &m),
            &m,
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn modpow_dispatch_matches_basic(base in ubig(), exp in ubig(), m in ubig_nonzero()) {
        // The Montgomery fast path must be observationally identical to
        // the division-based reference, odd or even modulus alike.
        prop_assert_eq!(modpow(&base, &exp, &m), modpow_basic(&base, &exp, &m));
    }

    #[test]
    fn modular_ops_stay_reduced(a in ubig(), b in ubig(), m in ubig_nonzero()) {
        for v in [modadd(&a, &b, &m), modsub(&a, &b, &m), modmul(&a, &b, &m)] {
            prop_assert!(v < m);
        }
    }

    #[test]
    fn signed_arithmetic_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ba, bb) = (Ibig::from(a), Ibig::from(b));
        prop_assert_eq!((&ba + &bb).to_i128(), Some(a as i128 + b as i128));
        prop_assert_eq!((&ba - &bb).to_i128(), Some(a as i128 - b as i128));
        prop_assert_eq!((&ba * &bb).to_i128(), Some(a as i128 * b as i128));
    }

    #[test]
    fn rem_euclid_matches_i128(a in any::<i64>(), m in 1u64..) {
        let got = Ibig::from(a).rem_euclid(&Ubig::from(m));
        let expect = (a as i128).rem_euclid(m as i128) as u128;
        prop_assert_eq!(got.to_u128(), Some(expect));
    }

    #[test]
    fn low_bits_is_mod_pow2(a in ubig(), k in 0u64..200) {
        let m = Ubig::one() << (k as u32);
        prop_assert_eq!(a.low_bits(k), &a % &m);
    }

    #[test]
    fn cached_context_modpow_matches_basic(
        base in ubig(),
        exp in exponent(),
        m in odd_modulus(),
    ) {
        // The per-key cache must be transparent: first call populates the
        // cell, second call reuses it, both agree with the division-based
        // reference. Base is deliberately unreduced (may exceed m).
        let cached = CachedContext::new();
        let expect = modpow_basic(&base, &exp, &m);
        prop_assert_eq!(cached.modpow(&base, &exp, &m), expect.clone());
        prop_assert_eq!(cached.modpow(&base, &exp, &m), expect);
    }

    #[test]
    fn context_modpow_matches_basic(
        base in ubig(),
        exp in exponent(),
        m in odd_modulus(),
    ) {
        let ctx = MontgomeryContext::new(&m).unwrap();
        prop_assert_eq!(
            ctx.modpow(&(&base % &m), &exp),
            modpow_basic(&base, &exp, &m)
        );
    }

    #[test]
    fn fixed_base_table_matches_basic(
        base in ubig(),
        exp in exponent(),
        m in odd_modulus(),
    ) {
        let ctx = Arc::new(MontgomeryContext::new(&m).unwrap());
        let table = FixedBaseTable::new(ctx, &(&base % &m), 256);
        prop_assert_eq!(table.pow(&exp), modpow_basic(&base, &exp, &m));
    }

    #[test]
    fn double_exp_matches_basic(
        g in ubig(),
        a in exponent(),
        h in ubig(),
        b in exponent(),
        m in odd_modulus(),
    ) {
        // Shamir/Straus simultaneous exponentiation vs. two independent
        // reference ladders combined with one modular multiply.
        let ctx = MontgomeryContext::new(&m).unwrap();
        let expect = modmul(
            &modpow_basic(&g, &a, &m),
            &modpow_basic(&h, &b, &m),
            &m,
        );
        prop_assert_eq!(
            ctx.modpow2(&(&g % &m), &a, &(&h % &m), &b),
            expect.clone()
        );

        // The fixed-base pairing (the DGK g^m * h^r shape) must agree too.
        let arc = Arc::new(ctx);
        let tg = FixedBaseTable::new(Arc::clone(&arc), &(&g % &m), 256);
        let th = FixedBaseTable::new(arc, &(&h % &m), 256);
        prop_assert_eq!(tg.pow_mul(&a, &th, &b), expect);
    }

    #[test]
    fn multi_exp_matches_iterated_modpow(
        pairs in proptest::collection::vec((ubig(), exponent()), 0..6),
        m in odd_modulus(),
    ) {
        // The k-ary Straus walk vs. folding k reference exponentiations
        // with modmul. Bases are deliberately unreduced, exponents are
        // biased toward zero/tiny, and the modulus reaches down to a
        // single limb, covering every dispatch edge.
        let ctx = MontgomeryContext::new(&m).unwrap();
        let refs: Vec<(&Ubig, &Ubig)> = pairs.iter().map(|(b, e)| (b, e)).collect();
        let mut expect = &Ubig::one() % &m;
        for (b, e) in &pairs {
            expect = modmul(&expect, &modpow_basic(b, e, &m), &m);
        }
        prop_assert_eq!(ctx.modpow_multi(&refs), expect);
    }

    #[test]
    fn scratch_modpow_matches_basic(
        base in ubig(),
        exps in proptest::collection::vec(exponent(), 1..4),
        m in odd_modulus(),
    ) {
        // One PowScratch reused across several exponentiations must be
        // invisible: every result identical to the allocation-per-call
        // reference.
        let ctx = MontgomeryContext::new(&m).unwrap();
        let mut ws = bigint::montgomery::PowScratch::new();
        for e in &exps {
            prop_assert_eq!(
                ctx.modpow_with_scratch(&base, e, &mut ws),
                modpow_basic(&base, e, &m)
            );
        }
    }
}

proptest! {
    // Wide-operand cases are expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn karatsuba_mont_mul_matches_schoolbook(
        seed_a in proptest::collection::vec(any::<u64>(), 33..40),
        seed_b in proptest::collection::vec(any::<u64>(), 33..40),
        m in proptest::collection::vec(any::<u64>(), 33..40),
    ) {
        // Moduli above MONT_KARATSUBA_LIMBS route mont_mul through the
        // Karatsuba multiply; pin it to the schoolbook kernel.
        let mut m = Ubig::from_limbs(m);
        m.set_bit(0, true);
        prop_assume!(m > Ubig::one());
        let ctx = MontgomeryContext::new(&m).unwrap();
        let a = ctx.to_mont(&(&Ubig::from_limbs(seed_a) % &m));
        let b = ctx.to_mont(&(&Ubig::from_limbs(seed_b) % &m));
        prop_assert_eq!(
            ctx.mont_mul_ablation(&a, &b, true),
            ctx.mont_mul_ablation(&a, &b, false)
        );
        prop_assert_eq!(ctx.mont_mul_ablation(&a, &b, true), ctx.mul_mont(&a, &b));
    }
}
