//! Primality testing (Miller–Rabin) and random prime generation.

use rand::Rng;

use crate::modular::modpow;
use crate::random::{gen_exact_bits, gen_range};
use crate::Ubig;

/// Small primes used for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Deterministic Miller–Rabin witnesses for `n < 3.3 * 10^24` (covers all
/// values below 2^81); see Sorenson & Webster (2015).
const DETERMINISTIC_WITNESSES: [u64; 13] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41];

/// Number of random Miller–Rabin rounds for large candidates; error
/// probability is at most `4^-64`.
const RANDOM_ROUNDS: usize = 64;

/// Miller–Rabin strong-probable-prime test to base `a`.
/// Requires `n` odd and `n > 2`; `d * 2^s == n - 1` with `d` odd.
fn is_sprp(n: &Ubig, a: &Ubig, d: &Ubig, s: u64) -> bool {
    let n_minus_1 = n - &Ubig::one();
    let mut x = modpow(a, d, n);
    if x.is_one() || x == n_minus_1 {
        return true;
    }
    for _ in 1..s {
        x = modpow(&x, &Ubig::two(), n);
        if x == n_minus_1 {
            return true;
        }
        if x.is_one() {
            return false;
        }
    }
    false
}

/// Tests whether `n` is (very probably) prime.
///
/// Deterministic for `n < 2^81` via fixed witness sets; probabilistic with
/// 64 random rounds above (error `<= 4^-64`).
///
/// ```
/// use bigint::{prime, Ubig};
/// assert!(prime::is_prime(&Ubig::from(1_000_000_007u64), &mut rand::thread_rng()));
/// assert!(!prime::is_prime(&Ubig::from(1_000_000_008u64), &mut rand::thread_rng()));
/// ```
pub fn is_prime<R: Rng + ?Sized>(n: &Ubig, rng: &mut R) -> bool {
    if n < &Ubig::two() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = Ubig::from(p);
        if *n == pb {
            return true;
        }
        if (n % &pb).is_zero() {
            return false;
        }
    }
    let n_minus_1 = n - &Ubig::one();
    let s = n_minus_1.trailing_zeros().expect("n > 1 so n-1 > 0");
    let d = &n_minus_1 >> (s as u32);

    if n.bits() <= 81 {
        DETERMINISTIC_WITNESSES.iter().all(|&a| is_sprp(n, &Ubig::from(a), &d, s))
    } else {
        (0..RANDOM_ROUNDS).all(|_| {
            let a = gen_range(rng, &Ubig::two(), &n_minus_1);
            is_sprp(n, &a, &d, s)
        })
    }
}

/// Generates a random prime with exactly `bits` bits.
///
/// ```
/// use bigint::{prime, Ubig};
/// let p = prime::gen_prime(&mut rand::thread_rng(), 32);
/// assert_eq!(p.bits(), 32);
/// assert!(prime::is_prime(&p, &mut rand::thread_rng()));
/// ```
///
/// # Panics
///
/// Panics if `bits < 2` (no primes below 2 bits).
pub fn gen_prime<R: Rng + ?Sized>(rng: &mut R, bits: u64) -> Ubig {
    assert!(bits >= 2, "smallest prime needs 2 bits");
    loop {
        let mut candidate = gen_exact_bits(rng, bits);
        candidate.set_bit(0, true); // force odd
        if is_prime(&candidate, rng) {
            return candidate;
        }
    }
}

/// Generates a random prime `p` with exactly `bits` bits such that
/// `p ≡ 1 (mod m)` — i.e. `m | p - 1`. Used by DGK key generation, which
/// needs subgroups of prescribed order inside `Z_p^*`.
///
/// # Panics
///
/// Panics if `m` is zero, or if `bits` is too small to fit `k*m + 1`.
pub fn gen_prime_with_divisor<R: Rng + ?Sized>(rng: &mut R, bits: u64, m: &Ubig) -> Ubig {
    assert!(!m.is_zero(), "divisor must be positive");
    let m_bits = m.bits();
    assert!(bits > m_bits + 1, "bits ({bits}) must exceed divisor bits ({m_bits}) + 1");
    loop {
        // p = k*m + 1 with k sized so p has exactly `bits` bits.
        let k_bits = bits - m_bits;
        let k = gen_exact_bits(rng, k_bits);
        let candidate = &(&k * m) + &Ubig::one();
        if candidate.bits() != bits {
            continue;
        }
        if is_prime(&candidate, rng) {
            return candidate;
        }
    }
}

/// Returns the smallest prime `>= n`.
///
/// ```
/// use bigint::{prime, Ubig};
/// assert_eq!(prime::next_prime(&Ubig::from(14u64), &mut rand::thread_rng()), Ubig::from(17u64));
/// ```
pub fn next_prime<R: Rng + ?Sized>(n: &Ubig, rng: &mut R) -> Ubig {
    let mut candidate = if n <= &Ubig::two() {
        return Ubig::two();
    } else if n.is_even() {
        n + &Ubig::one()
    } else {
        n.clone()
    };
    loop {
        if is_prime(&candidate, rng) {
            return candidate;
        }
        candidate = &candidate + &Ubig::two();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn small_primes_recognized() {
        let mut r = rng();
        let primes = [2u64, 3, 5, 7, 11, 97, 251, 257, 65537, 1_000_000_007];
        let composites = [0u64, 1, 4, 9, 91, 221, 65535, 1_000_000_008];
        for p in primes {
            assert!(is_prime(&Ubig::from(p), &mut r), "{p} is prime");
        }
        for c in composites {
            assert!(!is_prime(&Ubig::from(c), &mut r), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        let mut r = rng();
        // Carmichael numbers fool the Fermat test but not Miller–Rabin.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_prime(&Ubig::from(c), &mut r), "{c} is a Carmichael number");
        }
    }

    #[test]
    fn mersenne_prime_2_89() {
        let mut r = rng();
        let p = (Ubig::one() << 89) - Ubig::one();
        assert!(is_prime(&p, &mut r));
        // 2^83 - 1 is composite.
        let c = (Ubig::one() << 83) - Ubig::one();
        assert!(!is_prime(&c, &mut r));
    }

    #[test]
    fn gen_prime_has_exact_bits() {
        let mut r = rng();
        for bits in [8u64, 16, 32, 48, 64] {
            let p = gen_prime(&mut r, bits);
            assert_eq!(p.bits(), bits);
            assert!(is_prime(&p, &mut r));
        }
    }

    #[test]
    fn gen_prime_with_divisor_constraint_holds() {
        let mut r = rng();
        let m = Ubig::from(2u64 * 3 * 227); // small composite divisor
        let p = gen_prime_with_divisor(&mut r, 40, &m);
        assert_eq!(p.bits(), 40);
        assert!(is_prime(&p, &mut r));
        assert!(((&p - &Ubig::one()) % &m).is_zero(), "m | p-1");
    }

    #[test]
    fn next_prime_steps_forward() {
        let mut r = rng();
        assert_eq!(next_prime(&Ubig::zero(), &mut r), Ubig::two());
        assert_eq!(next_prime(&Ubig::from(7u64), &mut r), Ubig::from(7u64));
        assert_eq!(next_prime(&Ubig::from(8u64), &mut r), Ubig::from(11u64));
        assert_eq!(next_prime(&Ubig::from(90u64), &mut r), Ubig::from(97u64));
    }

    #[test]
    fn distinct_primes_generated() {
        let mut r = rng();
        let p = gen_prime(&mut r, 32);
        let q = gen_prime(&mut r, 32);
        // Overwhelmingly likely; a fixed seed makes it deterministic.
        assert_ne!(p, q);
    }
}
