//! Modular arithmetic: addition, subtraction, multiplication,
//! exponentiation, inversion and CRT recombination.
//!
//! All functions take operands that are *not* required to be reduced; they
//! reduce internally. Moduli must be non-zero.

use crate::gcd::{extended_gcd, modinv};
use crate::{Ibig, Ubig};

/// `(a + b) mod m`.
///
/// ```
/// use bigint::{modular, Ubig};
/// let m = Ubig::from(10u64);
/// assert_eq!(modular::modadd(&Ubig::from(7u64), &Ubig::from(8u64), &m), Ubig::from(5u64));
/// ```
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn modadd(a: &Ubig, b: &Ubig, m: &Ubig) -> Ubig {
    &(a + b) % m
}

/// `(a - b) mod m`, canonical in `[0, m)`.
///
/// ```
/// use bigint::{modular, Ubig};
/// let m = Ubig::from(10u64);
/// assert_eq!(modular::modsub(&Ubig::from(3u64), &Ubig::from(8u64), &m), Ubig::from(5u64));
/// ```
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn modsub(a: &Ubig, b: &Ubig, m: &Ubig) -> Ubig {
    let a = a % m;
    let b = b % m;
    if a >= b {
        a - b
    } else {
        &(&a + m) - &b
    }
}

/// `(a * b) mod m`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn modmul(a: &Ubig, b: &Ubig, m: &Ubig) -> Ubig {
    &(a * b) % m
}

/// `-a mod m`, canonical in `[0, m)`.
pub fn modneg(a: &Ubig, m: &Ubig) -> Ubig {
    modsub(&Ubig::zero(), a, m)
}

/// Exponent bit-count above which building a Montgomery context pays for
/// itself (context setup costs two divisions and a word inversion;
/// every saved iteration avoids one multi-limb division).
const MONTGOMERY_EXP_THRESHOLD: u64 = 24;

/// `base^exp mod m` by left-to-right square-and-multiply.
///
/// For odd moduli with non-trivial exponents this transparently switches
/// to Montgomery arithmetic ([`crate::montgomery::MontgomeryContext`]),
/// which replaces the per-step division with word-level REDC — the hot
/// path of every Paillier/DGK operation in the workspace. Results are
/// identical (property-tested against [`modpow_basic`]).
///
/// `modpow(_, 0, m) == 1 % m` by convention.
///
/// ```
/// use bigint::{modular, Ubig};
/// let m = Ubig::from(497u64);
/// assert_eq!(modular::modpow(&Ubig::from(4u64), &Ubig::from(13u64), &m), Ubig::from(445u64));
/// ```
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn modpow(base: &Ubig, exp: &Ubig, m: &Ubig) -> Ubig {
    assert!(!m.is_zero(), "modpow modulus must be non-zero");
    if m.is_odd() && exp.bits() >= MONTGOMERY_EXP_THRESHOLD {
        if let Some(ctx) = crate::montgomery::MontgomeryContext::new(m) {
            return ctx.modpow(base, exp);
        }
    }
    modpow_basic(base, exp, m)
}

/// Division-based square-and-multiply — the reference implementation
/// [`modpow`] dispatches away from. Kept public for testing and for the
/// Montgomery-vs-division ablation bench.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn modpow_basic(base: &Ubig, exp: &Ubig, m: &Ubig) -> Ubig {
    assert!(!m.is_zero(), "modpow modulus must be non-zero");
    if m.is_one() {
        return Ubig::zero();
    }
    let mut result = Ubig::one();
    let mut acc = base % m;
    let nbits = exp.bits();
    for i in 0..nbits {
        if exp.bit(i) {
            result = modmul(&result, &acc, m);
        }
        if i + 1 < nbits {
            acc = modmul(&acc, &acc, m);
        }
    }
    result
}

/// Modular inverse; see [`crate::gcd::modinv`]. Re-exported here so modular
/// arithmetic callers find the whole toolkit in one module.
pub fn modinverse(a: &Ubig, m: &Ubig) -> Option<Ubig> {
    modinv(a, m)
}

/// Chinese Remainder Theorem for two coprime moduli: the unique `x` in
/// `[0, m1*m2)` with `x ≡ r1 (mod m1)` and `x ≡ r2 (mod m2)`, or `None` if
/// `gcd(m1, m2) != 1`.
///
/// ```
/// use bigint::{modular, Ubig};
/// // x ≡ 2 (mod 3), x ≡ 3 (mod 5) => x = 8
/// let x = modular::crt_pair(
///     &Ubig::from(2u64), &Ubig::from(3u64),
///     &Ubig::from(3u64), &Ubig::from(5u64),
/// ).unwrap();
/// assert_eq!(x, Ubig::from(8u64));
/// ```
pub fn crt_pair(r1: &Ubig, m1: &Ubig, r2: &Ubig, m2: &Ubig) -> Option<Ubig> {
    let (g, p, _q) = extended_gcd(m1, m2);
    if !g.is_one() {
        return None;
    }
    // x = r1 + m1 * ((r2 - r1) * p mod m2)
    let diff = &Ibig::from(r2.clone()) - &Ibig::from(r1.clone());
    let coeff_mod = (&diff * &p).rem_euclid(m2);
    Some(&(r1 % &(m1 * m2)) + &(m1 * &coeff_mod))
}

/// The multiplicative order-checking helper: `a^k ≡ 1 (mod m)`.
pub fn is_order_divisor(a: &Ubig, k: &Ubig, m: &Ubig) -> bool {
    modpow(a, k, m).is_one()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modadd_wraps() {
        let m = Ubig::from(100u64);
        assert_eq!(modadd(&Ubig::from(60u64), &Ubig::from(70u64), &m), Ubig::from(30u64));
    }

    #[test]
    fn modsub_canonical_range() {
        let m = Ubig::from(100u64);
        let r = modsub(&Ubig::from(10u64), &Ubig::from(99u64), &m);
        assert_eq!(r, Ubig::from(11u64));
        assert_eq!(modsub(&Ubig::from(5u64), &Ubig::from(5u64), &m), Ubig::zero());
        // Unreduced operands.
        assert_eq!(modsub(&Ubig::from(205u64), &Ubig::from(399u64), &m), Ubig::from(6u64));
    }

    #[test]
    fn modneg_inverse_of_add() {
        let m = Ubig::from(97u64);
        let a = Ubig::from(31u64);
        assert_eq!(modadd(&a, &modneg(&a, &m), &m), Ubig::zero());
        assert_eq!(modneg(&Ubig::zero(), &m), Ubig::zero());
    }

    #[test]
    fn modpow_matches_naive() {
        let m = Ubig::from(1009u64);
        for base in [0u64, 1, 2, 17, 1008] {
            for exp in [0u64, 1, 2, 3, 10, 50] {
                let mut naive = 1u64;
                for _ in 0..exp {
                    naive = naive * base % 1009;
                }
                assert_eq!(
                    modpow(&Ubig::from(base), &Ubig::from(exp), &m),
                    Ubig::from(naive),
                    "{base}^{exp} mod 1009"
                );
            }
        }
    }

    #[test]
    fn modpow_fermat_large_modulus() {
        // p is a 89-bit prime: 2^89 - 1 is a Mersenne prime.
        let p = (Ubig::one() << 89) - Ubig::one();
        let a = Ubig::from(123_456_789u64);
        let exp = &p - &Ubig::one();
        assert_eq!(modpow(&a, &exp, &p), Ubig::one());
    }

    #[test]
    fn modpow_modulus_one() {
        assert_eq!(modpow(&Ubig::from(5u64), &Ubig::from(3u64), &Ubig::one()), Ubig::zero());
    }

    #[test]
    fn modpow_zero_exponent() {
        let m = Ubig::from(7u64);
        assert_eq!(modpow(&Ubig::from(4u64), &Ubig::zero(), &m), Ubig::one());
        assert_eq!(modpow(&Ubig::zero(), &Ubig::zero(), &m), Ubig::one());
    }

    #[test]
    fn crt_reconstructs() {
        let x =
            crt_pair(&Ubig::from(6u64), &Ubig::from(7u64), &Ubig::from(4u64), &Ubig::from(11u64))
                .unwrap();
        assert_eq!(&x % &Ubig::from(7u64), Ubig::from(6u64));
        assert_eq!(&x % &Ubig::from(11u64), Ubig::from(4u64));
        let modulus = Ubig::from(77u64);
        assert!(x < modulus);
    }

    #[test]
    fn crt_rejects_common_factor() {
        assert!(
            crt_pair(&Ubig::one(), &Ubig::from(6u64), &Ubig::one(), &Ubig::from(9u64)).is_none()
        );
    }
}
