//! Arbitrary-precision integer arithmetic, built from scratch as the
//! number-theoretic substrate for the Paillier and DGK cryptosystems used by
//! the private consensus protocol.
//!
//! The crate provides:
//!
//! * [`Ubig`] — an arbitrary-precision unsigned integer backed by 64-bit
//!   limbs, with schoolbook multiplication and Knuth Algorithm D division.
//! * [`Ibig`] — a signed wrapper (sign + magnitude) used by the extended
//!   Euclidean algorithm and by protocols that manipulate signed shares.
//! * [`modular`] — modular addition, subtraction, multiplication,
//!   exponentiation and inversion.
//! * [`prime`] — Miller–Rabin primality testing and random prime generation.
//! * [`random`] — uniform sampling of big integers below a bound or with a
//!   fixed bit length.
//!
//! # Examples
//!
//! ```
//! use bigint::{Ubig, modular};
//!
//! let p = Ubig::from(101u64);
//! let a = Ubig::from(7u64);
//! // 7^100 mod 101 == 1 by Fermat's little theorem.
//! assert_eq!(modular::modpow(&a, &Ubig::from(100u64), &p), Ubig::one());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod add_sub;
mod div;
mod error;
mod fmt;
mod ibig;
mod mul;
mod serde_impl;
mod shift;
mod ubig;

pub mod gcd;
pub mod modular;
pub mod montgomery;
pub mod prime;
pub mod random;

pub use error::ParseBigIntError;
pub use ibig::{Ibig, Sign};
#[doc(hidden)]
pub use mul::mul_for_ablation;
pub use ubig::Ubig;

/// Number of bits in one limb of a [`Ubig`].
pub const LIMB_BITS: u32 = 64;

/// One limb of a [`Ubig`]: the machine word the representation is built on.
pub type Limb = u64;

/// Two limbs wide; used internally for carries and products.
pub(crate) type DoubleLimb = u128;
