//! The unsigned arbitrary-precision integer type.

use std::cmp::Ordering;

use crate::{DoubleLimb, Limb, LIMB_BITS};

/// An arbitrary-precision unsigned integer.
///
/// Internally a little-endian vector of 64-bit limbs with the invariant that
/// the most significant limb is non-zero (zero is the empty vector). All
/// constructors and arithmetic preserve this normalization.
///
/// # Examples
///
/// ```
/// use bigint::Ubig;
///
/// let a = Ubig::from(10u64);
/// let b = Ubig::from(32u64);
/// assert_eq!((&a * &b).to_string(), "320");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Ubig {
    /// Little-endian limbs; no trailing zeros.
    pub(crate) limbs: Vec<Limb>,
}

impl Ubig {
    /// The value `0`.
    ///
    /// ```
    /// use bigint::Ubig;
    /// assert!(Ubig::zero().is_zero());
    /// ```
    pub fn zero() -> Self {
        Ubig { limbs: Vec::new() }
    }

    /// The value `1`.
    ///
    /// ```
    /// use bigint::Ubig;
    /// assert_eq!(Ubig::one(), Ubig::from(1u64));
    /// ```
    pub fn one() -> Self {
        Ubig { limbs: vec![1] }
    }

    /// The value `2`.
    pub fn two() -> Self {
        Ubig { limbs: vec![2] }
    }

    /// Builds a value from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<Limb>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Ubig { limbs }
    }

    /// Returns the little-endian limbs of `self`.
    pub fn as_limbs(&self) -> &[Limb] {
        &self.limbs
    }

    /// Whether `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether `self == 1`.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Whether the lowest bit is zero. Zero counts as even.
    ///
    /// ```
    /// use bigint::Ubig;
    /// assert!(Ubig::from(4u64).is_even());
    /// assert!(!Ubig::from(7u64).is_even());
    /// ```
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Whether the lowest bit is one.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (`0` for zero).
    ///
    /// ```
    /// use bigint::Ubig;
    /// assert_eq!(Ubig::from(255u64).bits(), 8);
    /// assert_eq!(Ubig::zero().bits(), 0);
    /// ```
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(top) => {
                (self.limbs.len() as u64 - 1) * LIMB_BITS as u64
                    + (LIMB_BITS - top.leading_zeros()) as u64
            }
        }
    }

    /// Value of bit `i` (little-endian, bit 0 is least significant).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / LIMB_BITS as u64) as usize;
        let off = (i % LIMB_BITS as u64) as u32;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to `value`, growing the representation if needed.
    pub fn set_bit(&mut self, i: u64, value: bool) {
        let limb = (i / LIMB_BITS as u64) as usize;
        let off = (i % LIMB_BITS as u64) as u32;
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << off;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1 << off);
            self.normalize();
        }
    }

    /// Number of trailing zero bits; `None` for zero.
    pub fn trailing_zeros(&self) -> Option<u64> {
        for (idx, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(idx as u64 * LIMB_BITS as u64 + l.trailing_zeros() as u64);
            }
        }
        None
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << LIMB_BITS),
            _ => None,
        }
    }

    /// Little-endian byte representation without trailing zero bytes.
    ///
    /// ```
    /// use bigint::Ubig;
    /// assert_eq!(Ubig::from(0x0102u64).to_le_bytes(), vec![0x02, 0x01]);
    /// ```
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for l in &self.limbs {
            out.extend_from_slice(&l.to_le_bytes());
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Parses a little-endian byte slice.
    ///
    /// ```
    /// use bigint::Ubig;
    /// let x = Ubig::from(0xdead_beefu64);
    /// assert_eq!(Ubig::from_le_bytes(&x.to_le_bytes()), x);
    /// ```
    pub fn from_le_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            limbs.push(u64::from_le_bytes(buf));
        }
        Ubig::from_limbs(limbs)
    }

    /// `self % 2^k`, i.e. keeps only the low `k` bits.
    pub fn low_bits(&self, k: u64) -> Ubig {
        let full = (k / LIMB_BITS as u64) as usize;
        let rem = (k % LIMB_BITS as u64) as u32;
        if full >= self.limbs.len() {
            return self.clone();
        }
        let mut limbs = self.limbs[..=full].to_vec();
        if rem == 0 {
            limbs.pop();
        } else {
            let last = limbs.last_mut().expect("non-empty by construction");
            *last &= (1u64 << rem) - 1;
        }
        Ubig::from_limbs(limbs)
    }

    /// Drops trailing zero limbs to restore the representation invariant.
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }
}

impl From<u64> for Ubig {
    fn from(v: u64) -> Self {
        if v == 0 {
            Ubig::zero()
        } else {
            Ubig { limbs: vec![v] }
        }
    }
}

impl From<u32> for Ubig {
    fn from(v: u32) -> Self {
        Ubig::from(v as u64)
    }
}

impl From<u128> for Ubig {
    fn from(v: u128) -> Self {
        Ubig::from_limbs(vec![v as Limb, (v >> LIMB_BITS) as Limb])
    }
}

impl From<usize> for Ubig {
    fn from(v: usize) -> Self {
        Ubig::from(v as u64)
    }
}

impl Ord for Ubig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for Ubig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq<u64> for Ubig {
    fn eq(&self, other: &u64) -> bool {
        self.to_u64() == Some(*other)
    }
}

/// Widening product of two limbs.
pub(crate) fn wide_mul(a: Limb, b: Limb) -> (Limb, Limb) {
    let p = a as DoubleLimb * b as DoubleLimb;
    (p as Limb, (p >> LIMB_BITS) as Limb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_has_no_limbs() {
        assert!(Ubig::zero().as_limbs().is_empty());
        assert!(Ubig::from(0u64).is_zero());
        assert_eq!(Ubig::zero(), Ubig::default());
    }

    #[test]
    fn from_limbs_normalizes() {
        let x = Ubig::from_limbs(vec![5, 0, 0]);
        assert_eq!(x.as_limbs(), &[5]);
    }

    #[test]
    fn bit_accessors_roundtrip() {
        let mut x = Ubig::zero();
        x.set_bit(0, true);
        x.set_bit(100, true);
        assert!(x.bit(0));
        assert!(x.bit(100));
        assert!(!x.bit(50));
        assert_eq!(x.bits(), 101);
        x.set_bit(100, false);
        assert_eq!(x.bits(), 1);
    }

    #[test]
    fn parity() {
        assert!(Ubig::zero().is_even());
        assert!(Ubig::one().is_odd());
        assert!(Ubig::from(u64::MAX).is_odd());
    }

    #[test]
    fn ordering_across_lengths() {
        let small = Ubig::from(u64::MAX);
        let big = Ubig::from_limbs(vec![0, 1]); // 2^64
        assert!(small < big);
        assert!(big > small);
        assert_eq!(big.cmp(&big.clone()), Ordering::Equal);
    }

    #[test]
    fn u128_roundtrip() {
        let v = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128;
        assert_eq!(Ubig::from(v).to_u128(), Some(v));
    }

    #[test]
    fn le_bytes_roundtrip() {
        let v = Ubig::from_limbs(vec![0x1122_3344_5566_7788, 0x99]);
        assert_eq!(Ubig::from_le_bytes(&v.to_le_bytes()), v);
        assert_eq!(Ubig::from_le_bytes(&[]), Ubig::zero());
    }

    #[test]
    fn low_bits_masks() {
        let v = Ubig::from(0b1011_0110u64);
        assert_eq!(v.low_bits(4), Ubig::from(0b0110u64));
        assert_eq!(v.low_bits(64), v);
        assert_eq!(v.low_bits(0), Ubig::zero());
        let w = Ubig::from_limbs(vec![u64::MAX, u64::MAX]);
        assert_eq!(w.low_bits(64), Ubig::from(u64::MAX));
        assert_eq!(w.low_bits(65).bits(), 65);
    }

    #[test]
    fn trailing_zeros_counts() {
        assert_eq!(Ubig::zero().trailing_zeros(), None);
        assert_eq!(Ubig::from(8u64).trailing_zeros(), Some(3));
        assert_eq!(Ubig::from_limbs(vec![0, 2]).trailing_zeros(), Some(65));
    }
}
