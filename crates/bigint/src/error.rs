//! Error types for the crate.

use std::error::Error;
use std::fmt;

/// Error returned when parsing a [`crate::Ubig`] or [`crate::Ibig`] from a
/// string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBigIntError {
    /// The input contained no digits.
    Empty,
    /// The input contained a character that is not a digit in the requested
    /// radix.
    InvalidDigit(char),
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBigIntError::Empty => write!(f, "cannot parse integer from empty string"),
            ParseBigIntError::InvalidDigit(c) => {
                write!(f, "invalid digit {c:?} for the requested radix")
            }
        }
    }
}

impl Error for ParseBigIntError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ParseBigIntError::Empty.to_string().contains("empty"));
        assert!(ParseBigIntError::InvalidDigit('z').to_string().contains("'z'"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<ParseBigIntError>();
    }
}
