//! Montgomery-form modular arithmetic.
//!
//! Modular exponentiation dominates every cryptographic operation in this
//! workspace (Paillier `r^n mod n²`, DGK `g^m h^r mod n`, bitwise
//! comparison blinding). The plain [`crate::modular::modpow`] pays a full
//! division per multiply; Montgomery's REDC replaces those divisions with
//! word-level multiplications, which is the standard production-grade
//! approach. The `paillier_ops`/`bigint_ops` benches quantify the win as
//! one of DESIGN.md's ablations.
//!
//! Only odd moduli are supported (always true for RSA-like `n`, `n²` and
//! the DGK modulus).

use crate::ubig::wide_mul;
use crate::{Limb, Ubig, LIMB_BITS};

/// Precomputed context for arithmetic modulo a fixed odd `n`.
///
/// # Examples
///
/// ```
/// use bigint::{montgomery::MontgomeryContext, Ubig};
///
/// let n = Ubig::from(101u64);
/// let ctx = MontgomeryContext::new(n).expect("odd modulus");
/// let result = ctx.modpow(&Ubig::from(7u64), &Ubig::from(100u64));
/// assert_eq!(result, Ubig::one()); // Fermat
/// ```
#[derive(Debug, Clone)]
pub struct MontgomeryContext {
    n: Ubig,
    /// Limb count `k`; the Montgomery radix is `R = 2^(64k)`.
    k: usize,
    /// `−n⁻¹ mod 2^64`.
    n_prime: Limb,
    /// `R² mod n`, for converting into Montgomery form.
    r_squared: Ubig,
    /// `R mod n` — the Montgomery representation of 1.
    one_mont: Ubig,
}

/// `n⁻¹ mod 2^64` for odd `n`, by Newton–Hensel lifting.
fn inv_mod_word(n0: Limb) -> Limb {
    debug_assert!(n0 & 1 == 1, "modulus must be odd");
    let mut inv: Limb = n0; // correct mod 2^3 already for odd n0
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
    }
    debug_assert_eq!(n0.wrapping_mul(inv), 1);
    inv
}

impl MontgomeryContext {
    /// Builds a context for odd `n > 1`; returns `None` for even or
    /// trivial moduli.
    pub fn new(n: Ubig) -> Option<Self> {
        if n.is_even() || n <= Ubig::one() {
            return None;
        }
        let k = n.as_limbs().len();
        let n_prime = inv_mod_word(n.as_limbs()[0]).wrapping_neg();
        // R mod n and R² mod n via shifting (cheap, done once).
        let r = Ubig::one() << (k as u32 * LIMB_BITS);
        let one_mont = &r % &n;
        let r_squared = &(&one_mont * &one_mont) % &n;
        Some(MontgomeryContext { n, k, n_prime, r_squared, one_mont })
    }

    /// The modulus.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// Montgomery reduction: given `t < n·R`, returns `t·R⁻¹ mod n`.
    fn redc(&self, t: &Ubig) -> Ubig {
        let k = self.k;
        let n_limbs = self.n.as_limbs();
        // Working buffer of 2k+1 limbs.
        let mut buf: Vec<Limb> = vec![0; 2 * k + 1];
        let t_limbs = t.as_limbs();
        buf[..t_limbs.len()].copy_from_slice(t_limbs);

        for i in 0..k {
            let m = buf[i].wrapping_mul(self.n_prime);
            // buf += m * n << (64 i)
            let mut carry: Limb = 0;
            for j in 0..k {
                let (lo, hi) = wide_mul(m, n_limbs[j]);
                let (s1, c1) = buf[i + j].overflowing_add(lo);
                let (s2, c2) = s1.overflowing_add(carry);
                buf[i + j] = s2;
                carry = hi.wrapping_add(c1 as Limb).wrapping_add(c2 as Limb);
                // hi + c1 + c2 cannot wrap: hi <= 2^64 - 2 when lo exists.
            }
            // Propagate the final carry upward.
            let mut idx = i + k;
            while carry != 0 {
                let (s, c) = buf[idx].overflowing_add(carry);
                buf[idx] = s;
                carry = c as Limb;
                idx += 1;
            }
        }
        let reduced = Ubig::from_limbs(buf[k..].to_vec());
        if reduced >= self.n {
            reduced - self.n.clone()
        } else {
            reduced
        }
    }

    /// Converts `x < n` into Montgomery form `x·R mod n`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `x >= n`.
    pub fn to_mont(&self, x: &Ubig) -> Ubig {
        debug_assert!(x < &self.n, "operand must be reduced");
        self.redc(&(x * &self.r_squared))
    }

    /// Converts out of Montgomery form.
    pub fn from_mont(&self, x_mont: &Ubig) -> Ubig {
        self.redc(x_mont)
    }

    /// Multiplies two Montgomery-form values.
    pub fn mul_mont(&self, a: &Ubig, b: &Ubig) -> Ubig {
        self.redc(&(a * b))
    }

    /// `base^exp mod n` with all multiplications in Montgomery form.
    ///
    /// Matches [`crate::modular::modpow`] exactly (property-tested).
    pub fn modpow(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        let base = base % &self.n;
        if exp.is_zero() {
            return if self.n.is_one() { Ubig::zero() } else { Ubig::one() };
        }
        let base_mont = self.to_mont(&base);
        let mut acc = self.one_mont.clone();
        for i in (0..exp.bits()).rev() {
            acc = self.mul_mont(&acc, &acc);
            if exp.bit(i) {
                acc = self.mul_mont(&acc, &base_mont);
            }
        }
        self.from_mont(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::modpow_basic;
    use crate::random;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_even_or_trivial_moduli() {
        assert!(MontgomeryContext::new(Ubig::from(10u64)).is_none());
        assert!(MontgomeryContext::new(Ubig::one()).is_none());
        assert!(MontgomeryContext::new(Ubig::zero()).is_none());
        assert!(MontgomeryContext::new(Ubig::from(9u64)).is_some());
    }

    #[test]
    fn word_inverse_is_exact() {
        for n0 in [1u64, 3, 5, 0xffff_ffff_ffff_fff1, 0x1234_5678_9abc_def1] {
            let inv = inv_mod_word(n0);
            assert_eq!(n0.wrapping_mul(inv), 1, "inverse of {n0:#x}");
        }
    }

    #[test]
    fn roundtrip_to_from_mont() {
        let n = Ubig::from(1_000_003u64);
        let ctx = MontgomeryContext::new(n.clone()).unwrap();
        for x in [0u64, 1, 2, 999_999, 500_000] {
            let x = Ubig::from(x);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x);
        }
    }

    #[test]
    fn mul_matches_plain_modmul() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut n = random::gen_exact_bits(&mut rng, 192);
        n.set_bit(0, true);
        let ctx = MontgomeryContext::new(n.clone()).unwrap();
        for _ in 0..50 {
            let a = random::gen_below(&mut rng, &n);
            let b = random::gen_below(&mut rng, &n);
            let expect = crate::modular::modmul(&a, &b, &n);
            let got = ctx.from_mont(&ctx.mul_mont(&ctx.to_mont(&a), &ctx.to_mont(&b)));
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn modpow_matches_plain_across_sizes() {
        let mut rng = StdRng::seed_from_u64(2);
        for bits in [64u64, 128, 256, 521] {
            let mut n = random::gen_exact_bits(&mut rng, bits);
            n.set_bit(0, true);
            let ctx = MontgomeryContext::new(n.clone()).unwrap();
            for _ in 0..5 {
                let base = random::gen_below(&mut rng, &n);
                let exp = random::gen_bits(&mut rng, bits);
                assert_eq!(ctx.modpow(&base, &exp), modpow_basic(&base, &exp, &n), "bits {bits}");
            }
        }
    }

    #[test]
    fn modpow_edge_exponents() {
        let n = Ubig::from(101u64);
        let ctx = MontgomeryContext::new(n).unwrap();
        assert_eq!(ctx.modpow(&Ubig::from(7u64), &Ubig::zero()), Ubig::one());
        assert_eq!(ctx.modpow(&Ubig::from(7u64), &Ubig::one()), Ubig::from(7u64));
        assert_eq!(ctx.modpow(&Ubig::zero(), &Ubig::from(5u64)), Ubig::zero());
        // Unreduced base is reduced first.
        assert_eq!(ctx.modpow(&Ubig::from(108u64), &Ubig::two()), Ubig::from(49u64));
    }

    #[test]
    fn fermat_little_theorem() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = crate::prime::gen_prime(&mut rng, 96);
        let ctx = MontgomeryContext::new(p.clone()).unwrap();
        let exp = &p - &Ubig::one();
        for _ in 0..5 {
            let a = random::gen_range(&mut rng, &Ubig::two(), &p);
            assert_eq!(ctx.modpow(&a, &exp), Ubig::one());
        }
    }
}
