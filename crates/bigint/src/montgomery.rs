//! Montgomery-form modular arithmetic and the exponentiation caches the
//! crypto stack is built on.
//!
//! Modular exponentiation dominates every cryptographic operation in this
//! workspace (Paillier `r^n mod n²`, DGK `g^m h^r mod n`, bitwise
//! comparison blinding). The plain [`crate::modular::modpow`] pays a full
//! division per multiply; Montgomery's REDC replaces those divisions with
//! word-level multiplications, which is the standard production-grade
//! approach. On top of the raw context this module layers the caches that
//! make modulus- and base-reuse first-class (DESIGN.md, "Exponentiation
//! strategy"):
//!
//! * [`MontgomeryContext`] — per-modulus precomputation with a 4-bit
//!   windowed [`MontgomeryContext::modpow`], a Shamir/Straus
//!   simultaneous double exponentiation [`MontgomeryContext::modpow2`],
//!   and its k-ary generalization [`MontgomeryContext::modpow_multi`]
//!   (one shared squaring chain across a whole batch of bases), all
//!   running on reusable limb scratch buffers (no per-step allocation);
//!   batch callers hold a [`PowScratch`] and use
//!   [`MontgomeryContext::modpow_with_scratch`] to amortize even the
//!   per-call buffer setup;
//! * [`FixedBaseTable`] — windowed fixed-base exponentiation for
//!   generators that never change (DGK `g`, `h`): all squarings are
//!   precomputed, leaving one multiplication per 4-bit exponent digit;
//! * [`CachedContext`] / [`CachedFixedBase`] — lazily initialized,
//!   clone-cheap, serde-skippable cells that key types embed so every
//!   operation on the same key reuses one context/table.
//!
//! Only odd moduli are supported (always true for RSA-like `n`, `n²` and
//! the DGK modulus).

use std::cmp::Ordering;
use std::sync::{Arc, OnceLock};

use crate::ubig::wide_mul;
use crate::{Limb, Ubig, LIMB_BITS};

/// Exponent-window width in bits. 2^4 = 16 table entries balances table
/// build cost against saved multiplications at the 64–2048-bit exponents
/// the cryptosystems use.
const WINDOW_BITS: u32 = 4;

/// Exponent bit-count below which the plain binary ladder beats building
/// the 16-entry window table (the table costs ~14 Montgomery squarings
/// and multiplications up front).
const WINDOW_THRESHOLD: u64 = 64;

/// Operand limb count at which the Montgomery product switches from the
/// in-place schoolbook kernel to the Karatsuba multiply in [`crate::mul`].
/// Matches the `Ubig` multiplication threshold: below it the extra
/// allocations of the recursive path cost more than the saved limb work.
const MONT_KARATSUBA_LIMBS: usize = 32;

/// Precomputed context for arithmetic modulo a fixed odd `n`.
///
/// # Examples
///
/// ```
/// use bigint::{montgomery::MontgomeryContext, Ubig};
///
/// let n = Ubig::from(101u64);
/// let ctx = MontgomeryContext::new(&n).expect("odd modulus");
/// let result = ctx.modpow(&Ubig::from(7u64), &Ubig::from(100u64));
/// assert_eq!(result, Ubig::one()); // Fermat
/// ```
#[derive(Debug, Clone)]
pub struct MontgomeryContext {
    n: Ubig,
    /// Limb count `k`; the Montgomery radix is `R = 2^(64k)`.
    k: usize,
    /// `−n⁻¹ mod 2^64`.
    n_prime: Limb,
    /// `R² mod n`, for converting into Montgomery form.
    r_squared: Ubig,
    /// `R mod n` — the Montgomery representation of 1.
    one_mont: Ubig,
}

/// `n⁻¹ mod 2^64` for odd `n`, by Newton–Hensel lifting.
fn inv_mod_word(n0: Limb) -> Limb {
    debug_assert!(n0 & 1 == 1, "modulus must be odd");
    let mut inv: Limb = n0; // correct mod 2^3 already for odd n0
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
    }
    debug_assert_eq!(n0.wrapping_mul(inv), 1);
    inv
}

/// Compares two equal-length little-endian limb slices.
fn cmp_limbs(a: &[Limb], b: &[Limb]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// `a -= b` over equal-length limb slices; returns the final borrow.
fn sub_limbs_in_place(a: &mut [Limb], b: &[Limb]) -> Limb {
    debug_assert_eq!(a.len(), b.len());
    let mut borrow: Limb = 0;
    for (x, &y) in a.iter_mut().zip(b) {
        let (d1, b1) = x.overflowing_sub(y);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *x = d2;
        borrow = (b1 as Limb) + (b2 as Limb);
    }
    borrow
}

/// Product of `a` and `b` into `out` (zeroed first). Schoolbook in place
/// for narrow operands; at [`MONT_KARATSUBA_LIMBS`] limbs and above the
/// sub-quadratic Karatsuba multiply wins despite its allocations.
/// `out.len()` must be at least `a.len() + b.len()`.
fn mul_limbs_into(a: &[Limb], b: &[Limb], out: &mut [Limb]) {
    debug_assert!(out.len() >= a.len() + b.len());
    out.fill(0);
    if a.is_empty() || b.is_empty() {
        return;
    }
    if a.len().min(b.len()) >= MONT_KARATSUBA_LIMBS {
        let prod = crate::mul::mul_limbs(a, b);
        out[..prod.len()].copy_from_slice(&prod);
        return;
    }
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: Limb = 0;
        for (j, &bj) in b.iter().enumerate() {
            let (lo, hi) = wide_mul(ai, bj);
            let (s1, c1) = out[i + j].overflowing_add(lo);
            let (s2, c2) = s1.overflowing_add(carry);
            out[i + j] = s2;
            carry = hi + c1 as Limb + c2 as Limb;
        }
        out[i + b.len()] = carry;
    }
}

/// Reads the `w`-th `WINDOW_BITS`-wide digit of `exp` (digit 0 is least
/// significant).
fn window_digit(exp: &Ubig, w: usize) -> usize {
    window_digit_w(exp, w, WINDOW_BITS)
}

/// Reads the `w`-th `width`-bit digit of `exp` (digit 0 is least
/// significant). `width` must be in `1..LIMB_BITS`.
fn window_digit_w(exp: &Ubig, w: usize, width: u32) -> usize {
    debug_assert!((1..LIMB_BITS).contains(&width));
    let limbs = exp.as_limbs();
    let start = w as u64 * width as u64;
    let limb = (start / LIMB_BITS as u64) as usize;
    let off = (start % LIMB_BITS as u64) as u32;
    let Some(&lo) = limbs.get(limb) else { return 0 };
    let mut d = lo >> off;
    if off + width > LIMB_BITS {
        if let Some(&hi) = limbs.get(limb + 1) {
            d |= hi << (LIMB_BITS - off);
        }
    }
    (d & ((1 << width) - 1)) as usize
}

impl MontgomeryContext {
    /// Builds a context for odd `n > 1`; returns `None` for even or
    /// trivial moduli. The modulus is only cloned once the checks pass,
    /// so the fallback dispatch in [`crate::modular::modpow`] costs no
    /// allocation for unsupported moduli.
    pub fn new(n: &Ubig) -> Option<Self> {
        if n.is_even() || n <= &Ubig::one() {
            return None;
        }
        let n = n.clone();
        let k = n.as_limbs().len();
        let n_prime = inv_mod_word(n.as_limbs()[0]).wrapping_neg();
        // R mod n and R² mod n via shifting (cheap, done once).
        let r = Ubig::one() << (k as u32 * LIMB_BITS);
        let one_mont = &r % &n;
        let r_squared = &(&one_mont * &one_mont) % &n;
        Some(MontgomeryContext { n, k, n_prime, r_squared, one_mont })
    }

    /// The modulus.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// Scratch-buffer length the limb-level routines need: `2k + 1`.
    fn scratch_len(&self) -> usize {
        2 * self.k + 1
    }

    /// In-place Montgomery reduction over a `2k+1`-limb buffer holding
    /// `t < n·R`; afterwards the canonical result (`< n`) occupies
    /// `buf[k..2k]`.
    fn redc_in_place(&self, buf: &mut [Limb]) {
        let k = self.k;
        debug_assert_eq!(buf.len(), self.scratch_len());
        let n_limbs = self.n.as_limbs();
        for i in 0..k {
            let m = buf[i].wrapping_mul(self.n_prime);
            // buf += m * n << (64 i)
            let mut carry: Limb = 0;
            for j in 0..k {
                let (lo, hi) = wide_mul(m, n_limbs[j]);
                let (s1, c1) = buf[i + j].overflowing_add(lo);
                let (s2, c2) = s1.overflowing_add(carry);
                buf[i + j] = s2;
                carry = hi.wrapping_add(c1 as Limb).wrapping_add(c2 as Limb);
                // hi + c1 + c2 cannot wrap: hi <= 2^64 - 2 when lo exists.
            }
            // Propagate the final carry upward.
            let mut idx = i + k;
            while carry != 0 {
                let (s, c) = buf[idx].overflowing_add(carry);
                buf[idx] = s;
                carry = c as Limb;
                idx += 1;
            }
        }
        // The value in buf[k..=2k] lies in [0, 2n): one conditional
        // subtraction canonicalizes it.
        let needs_sub = buf[2 * k] != 0 || cmp_limbs(&buf[k..2 * k], n_limbs) != Ordering::Less;
        if needs_sub {
            let borrow = sub_limbs_in_place(&mut buf[k..2 * k], n_limbs);
            buf[2 * k] = buf[2 * k].wrapping_sub(borrow);
            debug_assert_eq!(buf[2 * k], 0);
        }
    }

    /// Montgomery product of two `k`-limb values into `out` (`k` limbs),
    /// using `scratch` (`2k+1` limbs). `out` must not alias the inputs.
    fn mont_mul_limbs(&self, a: &[Limb], b: &[Limb], out: &mut [Limb], scratch: &mut [Limb]) {
        mul_limbs_into(a, b, scratch);
        self.redc_in_place(scratch);
        out.copy_from_slice(&scratch[self.k..2 * self.k]);
    }

    /// Converts a reduced `x < n` into a fixed-width `k`-limb Montgomery
    /// representation.
    fn to_mont_limbs(&self, x: &Ubig, scratch: &mut [Limb]) -> Vec<Limb> {
        debug_assert!(x < &self.n);
        mul_limbs_into(x.as_limbs(), self.r_squared.as_limbs(), scratch);
        self.redc_in_place(scratch);
        scratch[self.k..2 * self.k].to_vec()
    }

    /// [`MontgomeryContext::to_mont_limbs`] writing into a reusable
    /// output vector instead of allocating.
    fn to_mont_limbs_into(&self, x: &Ubig, scratch: &mut [Limb], out: &mut Vec<Limb>) {
        debug_assert!(x < &self.n);
        mul_limbs_into(x.as_limbs(), self.r_squared.as_limbs(), scratch);
        self.redc_in_place(scratch);
        out.clear();
        out.extend_from_slice(&scratch[self.k..2 * self.k]);
    }

    /// Converts a `k`-limb Montgomery value back to a normalized [`Ubig`].
    #[allow(clippy::wrong_self_convention)] // converts the argument, not self
    fn from_mont_limbs(&self, a: &[Limb], scratch: &mut [Limb]) -> Ubig {
        scratch.fill(0);
        scratch[..self.k].copy_from_slice(a);
        self.redc_in_place(scratch);
        Ubig::from_limbs(scratch[self.k..2 * self.k].to_vec())
    }

    /// `one_mont` padded to the fixed `k`-limb width.
    fn one_mont_limbs(&self) -> Vec<Limb> {
        let mut out = vec![0; self.k];
        out[..self.one_mont.as_limbs().len()].copy_from_slice(self.one_mont.as_limbs());
        out
    }

    /// Montgomery reduction: given `t < n·R`, returns `t·R⁻¹ mod n`.
    fn redc(&self, t: &Ubig) -> Ubig {
        let mut buf: Vec<Limb> = vec![0; self.scratch_len()];
        let t_limbs = t.as_limbs();
        buf[..t_limbs.len()].copy_from_slice(t_limbs);
        self.redc_in_place(&mut buf);
        Ubig::from_limbs(buf[self.k..2 * self.k].to_vec())
    }

    /// Converts `x < n` into Montgomery form `x·R mod n`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `x >= n`.
    pub fn to_mont(&self, x: &Ubig) -> Ubig {
        debug_assert!(x < &self.n, "operand must be reduced");
        self.redc(&(x * &self.r_squared))
    }

    /// Converts out of Montgomery form.
    #[allow(clippy::wrong_self_convention)] // converts the argument, not self
    pub fn from_mont(&self, x_mont: &Ubig) -> Ubig {
        self.redc(x_mont)
    }

    /// Multiplies two Montgomery-form values.
    pub fn mul_mont(&self, a: &Ubig, b: &Ubig) -> Ubig {
        self.redc(&(a * b))
    }

    /// `base^exp mod n` with all multiplications in Montgomery form on
    /// reusable scratch buffers; exponents of [`WINDOW_THRESHOLD`] bits
    /// or more additionally use 4-bit fixed windows (¼ the multiplies of
    /// the binary ladder).
    ///
    /// Matches [`crate::modular::modpow`] exactly (property-tested).
    pub fn modpow(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        let mut ws = PowScratch::new();
        self.modpow_with_scratch(base, exp, &mut ws)
    }

    /// [`MontgomeryContext::modpow`] with all working buffers drawn from a
    /// caller-owned [`PowScratch`], so batch loops (pool refills, zero-test
    /// fan-outs) pay zero heap allocation per exponentiation after the
    /// first. Bit-exact with `modpow` — it *is* the implementation
    /// `modpow` delegates to.
    pub fn modpow_with_scratch(&self, base: &Ubig, exp: &Ubig, ws: &mut PowScratch) -> Ubig {
        let base = base % &self.n;
        if exp.is_zero() {
            return if self.n.is_one() { Ubig::zero() } else { Ubig::one() };
        }
        let k = self.k;
        ws.scratch.clear();
        ws.scratch.resize(self.scratch_len(), 0);
        self.to_mont_limbs_into(&base, &mut ws.scratch, &mut ws.base);
        let nbits = exp.bits();
        ws.acc.clear();
        ws.acc.resize(k, 0);
        ws.acc[..self.one_mont.as_limbs().len()].copy_from_slice(self.one_mont.as_limbs());
        ws.tmp.clear();
        ws.tmp.resize(k, 0);
        if nbits < WINDOW_THRESHOLD {
            // Plain left-to-right binary ladder.
            for i in (0..nbits).rev() {
                self.mont_mul_limbs(&ws.acc, &ws.acc, &mut ws.tmp, &mut ws.scratch);
                std::mem::swap(&mut ws.acc, &mut ws.tmp);
                if exp.bit(i) {
                    self.mont_mul_limbs(&ws.acc, &ws.base, &mut ws.tmp, &mut ws.scratch);
                    std::mem::swap(&mut ws.acc, &mut ws.tmp);
                }
            }
        } else {
            // Fixed 4-bit windows: pows[d-1] = base^d in Montgomery form.
            let count = (1usize << WINDOW_BITS) - 1;
            if ws.pows.len() < count {
                ws.pows.resize_with(count, Vec::new);
            }
            ws.pows[0].clear();
            ws.pows[0].extend_from_slice(&ws.base);
            for d in 2..=count {
                let (head, tail) = ws.pows.split_at_mut(d - 1);
                tail[0].clear();
                tail[0].resize(k, 0);
                self.mont_mul_limbs(&head[d - 2], &ws.base, &mut tail[0], &mut ws.scratch);
            }
            let nwin = nbits.div_ceil(WINDOW_BITS as u64) as usize;
            for w in (0..nwin).rev() {
                if w + 1 != nwin {
                    for _ in 0..WINDOW_BITS {
                        self.mont_mul_limbs(&ws.acc, &ws.acc, &mut ws.tmp, &mut ws.scratch);
                        std::mem::swap(&mut ws.acc, &mut ws.tmp);
                    }
                }
                let digit = window_digit(exp, w);
                if digit != 0 {
                    self.mont_mul_limbs(&ws.acc, &ws.pows[digit - 1], &mut ws.tmp, &mut ws.scratch);
                    std::mem::swap(&mut ws.acc, &mut ws.tmp);
                }
            }
        }
        self.from_mont_limbs(&ws.acc, &mut ws.scratch)
    }

    /// Simultaneous double exponentiation `g^a · h^b mod n` by the
    /// Shamir/Straus trick: one shared squaring chain over
    /// `max(bits(a), bits(b))` with a single extra multiplication per
    /// set bit pair — roughly half the work of two independent walks.
    ///
    /// Bit-exact with
    /// `modmul(&modpow(g, a, n), &modpow(h, b, n), n)` (property-tested).
    ///
    /// ```
    /// use bigint::{montgomery::MontgomeryContext, modular, Ubig};
    ///
    /// let n = Ubig::from(1_000_003u64);
    /// let ctx = MontgomeryContext::new(&n).expect("odd modulus");
    /// let (g, h) = (Ubig::from(5u64), Ubig::from(7u64));
    /// let (a, b) = (Ubig::from(123u64), Ubig::from(456u64));
    /// let expect = modular::modmul(
    ///     &modular::modpow(&g, &a, &n),
    ///     &modular::modpow(&h, &b, &n),
    ///     &n,
    /// );
    /// assert_eq!(ctx.modpow2(&g, &a, &h, &b), expect);
    /// ```
    pub fn modpow2(&self, g: &Ubig, a: &Ubig, h: &Ubig, b: &Ubig) -> Ubig {
        let nbits = a.bits().max(b.bits());
        if nbits == 0 {
            return if self.n.is_one() { Ubig::zero() } else { Ubig::one() };
        }
        let k = self.k;
        let mut scratch = vec![0; self.scratch_len()];
        let g_m = self.to_mont_limbs(&(g % &self.n), &mut scratch);
        let h_m = self.to_mont_limbs(&(h % &self.n), &mut scratch);
        let mut gh_m = vec![0; k];
        self.mont_mul_limbs(&g_m, &h_m, &mut gh_m, &mut scratch);
        let mut acc = self.one_mont_limbs();
        let mut tmp = vec![0; k];
        for i in (0..nbits).rev() {
            self.mont_mul_limbs(&acc, &acc, &mut tmp, &mut scratch);
            std::mem::swap(&mut acc, &mut tmp);
            let factor = match (a.bit(i), b.bit(i)) {
                (true, true) => Some(&gh_m),
                (true, false) => Some(&g_m),
                (false, true) => Some(&h_m),
                (false, false) => None,
            };
            if let Some(f) = factor {
                self.mont_mul_limbs(&acc, f, &mut tmp, &mut scratch);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }
        self.from_mont_limbs(&acc, &mut scratch)
    }

    /// Simultaneous k-ary multi-exponentiation
    /// `∏ baseᵢ^expᵢ mod n` — the interleaved windowed Straus
    /// generalization of [`MontgomeryContext::modpow2`]: all bases share
    /// **one** squaring chain over the widest exponent, each contributing
    /// one table multiplication per non-zero window digit. For k bases of
    /// `b`-bit exponents that is `b` squarings total instead of `k·b`,
    /// which is where the batched kernels (pool refill, witness blinding)
    /// get their speedup.
    ///
    /// The window width adapts to the exponent size: 1 bit (plain
    /// interleaving) below [`WINDOW_THRESHOLD`], else [`WINDOW_BITS`]
    /// with a per-base odd-power table.
    ///
    /// Bit-exact with folding `modpow` results via `modmul`
    /// (property-tested); an empty slice yields `1 mod n`.
    ///
    /// ```
    /// use bigint::{montgomery::MontgomeryContext, modular, Ubig};
    ///
    /// let n = Ubig::from(1_000_003u64);
    /// let ctx = MontgomeryContext::new(&n).expect("odd modulus");
    /// let pairs = [
    ///     (Ubig::from(3u64), Ubig::from(100u64)),
    ///     (Ubig::from(5u64), Ubig::from(200u64)),
    ///     (Ubig::from(7u64), Ubig::from(300u64)),
    /// ];
    /// let refs: Vec<(&Ubig, &Ubig)> = pairs.iter().map(|(b, e)| (b, e)).collect();
    /// let mut expect = Ubig::one();
    /// for (b, e) in &pairs {
    ///     expect = modular::modmul(&expect, &modular::modpow(b, e, &n), &n);
    /// }
    /// assert_eq!(ctx.modpow_multi(&refs), expect);
    /// ```
    pub fn modpow_multi(&self, pairs: &[(&Ubig, &Ubig)]) -> Ubig {
        let nbits = pairs.iter().map(|(_, e)| e.bits()).max().unwrap_or(0);
        if nbits == 0 {
            return if self.n.is_one() { Ubig::zero() } else { Ubig::one() };
        }
        let k = self.k;
        let mut scratch = vec![0; self.scratch_len()];
        let w: u32 = if nbits < WINDOW_THRESHOLD { 1 } else { WINDOW_BITS };
        // Per-base window tables: tables[i][d-1] = baseᵢ^d in Montgomery
        // form, d in 1..2^w.
        let mut tables: Vec<Vec<Vec<Limb>>> = Vec::with_capacity(pairs.len());
        for (base, _) in pairs {
            let base_m = self.to_mont_limbs(&(*base % &self.n), &mut scratch);
            let mut entries: Vec<Vec<Limb>> = Vec::with_capacity((1usize << w) - 1);
            entries.push(base_m);
            for d in 2..1usize << w {
                let mut next = vec![0; k];
                self.mont_mul_limbs(&entries[d - 2], &entries[0], &mut next, &mut scratch);
                entries.push(next);
            }
            tables.push(entries);
        }
        let mut acc = self.one_mont_limbs();
        let mut tmp = vec![0; k];
        let nwin = nbits.div_ceil(w as u64) as usize;
        for win in (0..nwin).rev() {
            if win + 1 != nwin {
                for _ in 0..w {
                    self.mont_mul_limbs(&acc, &acc, &mut tmp, &mut scratch);
                    std::mem::swap(&mut acc, &mut tmp);
                }
            }
            for (i, (_, exp)) in pairs.iter().enumerate() {
                let digit = window_digit_w(exp, win, w);
                if digit != 0 {
                    self.mont_mul_limbs(&acc, &tables[i][digit - 1], &mut tmp, &mut scratch);
                    std::mem::swap(&mut acc, &mut tmp);
                }
            }
        }
        self.from_mont_limbs(&acc, &mut scratch)
    }

    /// One Montgomery product `a·b·R⁻¹ mod n` of two Montgomery-form
    /// values with the limb multiply pinned to schoolbook
    /// (`karatsuba = false`) or the production dispatch (`true`). Bench
    /// ablation hook only — not part of the public API surface.
    #[doc(hidden)]
    pub fn mont_mul_ablation(&self, a_mont: &Ubig, b_mont: &Ubig, karatsuba: bool) -> Ubig {
        let prod = crate::mul::mul_for_ablation(a_mont, b_mont, karatsuba);
        self.redc(&prod)
    }
}

/// Reusable working buffers for [`MontgomeryContext::modpow_with_scratch`]
/// and [`MontgomeryContext::modpow_multi`].
///
/// One `PowScratch` amortizes every intermediate allocation (REDC
/// scratch, accumulator, window tables) across a batch of
/// exponentiations — the per-call `Vec` churn is a measurable fraction of
/// the runtime at the 1–2 limb moduli the prototypes bench at. Buffers
/// are resized on use, so one scratch can serve contexts of different
/// widths.
///
/// # Examples
///
/// ```
/// use bigint::{montgomery::{MontgomeryContext, PowScratch}, Ubig};
///
/// let n = Ubig::from(1_000_003u64);
/// let ctx = MontgomeryContext::new(&n).expect("odd modulus");
/// let mut ws = PowScratch::new();
/// for e in 1u64..5 {
///     let got = ctx.modpow_with_scratch(&Ubig::from(7u64), &Ubig::from(e), &mut ws);
///     assert_eq!(got, ctx.modpow(&Ubig::from(7u64), &Ubig::from(e)));
/// }
/// ```
#[derive(Debug, Default)]
pub struct PowScratch {
    /// `2k+1`-limb REDC buffer.
    scratch: Vec<Limb>,
    /// Running accumulator in Montgomery form.
    acc: Vec<Limb>,
    /// Swap partner for `acc` (Montgomery products cannot alias out).
    tmp: Vec<Limb>,
    /// The reduced base in Montgomery form.
    base: Vec<Limb>,
    /// Window table: `pows[d-1] = base^d` in Montgomery form.
    pows: Vec<Vec<Limb>>,
}

impl PowScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Windowed fixed-base exponentiation table for a base that never
/// changes (a DGK generator, a group element reused across a protocol
/// run).
///
/// For every 4-bit exponent digit position the table stores the 15
/// non-trivial powers `base^(d·16^w)` in Montgomery form, so
/// [`FixedBaseTable::pow`] needs **zero squarings** — just one Montgomery
/// multiplication per non-zero digit of the exponent (≈ `bits/4`), vs
/// `bits` squarings plus `bits/2` multiplications for the binary ladder.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use bigint::{montgomery::{FixedBaseTable, MontgomeryContext}, modular, Ubig};
///
/// let n = Ubig::from(1_000_003u64);
/// let ctx = Arc::new(MontgomeryContext::new(&n).expect("odd modulus"));
/// let g = Ubig::from(42u64);
/// let table = FixedBaseTable::new(Arc::clone(&ctx), &g, 64);
/// let e = Ubig::from(123_456_789u64);
/// assert_eq!(table.pow(&e), modular::modpow(&g, &e, &n));
/// ```
#[derive(Debug, Clone)]
pub struct FixedBaseTable {
    ctx: Arc<MontgomeryContext>,
    /// The (reduced) base, kept for the wide-exponent fallback.
    base: Ubig,
    max_exp_bits: u64,
    /// `windows[w][d-1] = base^(d · 16^w)` in `k`-limb Montgomery form.
    windows: Vec<Vec<Vec<Limb>>>,
}

impl FixedBaseTable {
    /// Precomputes the digit tables for exponents up to `max_exp_bits`
    /// bits (wider exponents transparently fall back to
    /// [`MontgomeryContext::modpow`]).
    pub fn new(ctx: Arc<MontgomeryContext>, base: &Ubig, max_exp_bits: u64) -> Self {
        let max_exp_bits = max_exp_bits.max(WINDOW_BITS as u64);
        let k = ctx.k;
        let mut scratch = vec![0; ctx.scratch_len()];
        let base_red = base % &ctx.n;
        let nwin = max_exp_bits.div_ceil(WINDOW_BITS as u64) as usize;
        let mut windows = Vec::with_capacity(nwin);
        // cur = base^(16^w) in Montgomery form.
        let mut cur = ctx.to_mont_limbs(&base_red, &mut scratch);
        for _ in 0..nwin {
            let mut entries: Vec<Vec<Limb>> = Vec::with_capacity((1 << WINDOW_BITS) - 1);
            entries.push(cur.clone());
            for d in 2..1usize << WINDOW_BITS {
                let mut next = vec![0; k];
                ctx.mont_mul_limbs(&entries[d - 2], &cur, &mut next, &mut scratch);
                entries.push(next);
            }
            // base^(16^(w+1)) = (base^(8·16^w))^2.
            let mut next_cur = vec![0; k];
            ctx.mont_mul_limbs(&entries[7], &entries[7], &mut next_cur, &mut scratch);
            cur = next_cur;
            windows.push(entries);
        }
        FixedBaseTable { ctx, base: base_red, max_exp_bits, windows }
    }

    /// The Montgomery context the table is bound to.
    pub fn context(&self) -> &Arc<MontgomeryContext> {
        &self.ctx
    }

    /// The (reduced) base the table was built for.
    pub fn base(&self) -> &Ubig {
        &self.base
    }

    /// Largest exponent width the table covers without falling back.
    pub fn max_exp_bits(&self) -> u64 {
        self.max_exp_bits
    }

    /// `base^exp mod n` in `k`-limb Montgomery form, or `None` when the
    /// exponent exceeds the table width.
    fn pow_mont(&self, exp: &Ubig, scratch: &mut [Limb]) -> Option<Vec<Limb>> {
        if exp.bits() > self.max_exp_bits {
            return None;
        }
        let k = self.ctx.k;
        let mut acc: Option<Vec<Limb>> = None;
        let mut tmp = vec![0; k];
        let nwin = exp.bits().div_ceil(WINDOW_BITS as u64) as usize;
        for (w, entries) in self.windows.iter().enumerate().take(nwin) {
            let digit = window_digit(exp, w);
            if digit == 0 {
                continue;
            }
            match acc {
                None => acc = Some(entries[digit - 1].clone()),
                Some(ref a) => {
                    self.ctx.mont_mul_limbs(a, &entries[digit - 1], &mut tmp, scratch);
                    std::mem::swap(acc.as_mut().expect("set above"), &mut tmp);
                }
            }
        }
        Some(acc.unwrap_or_else(|| self.ctx.one_mont_limbs()))
    }

    /// `base^exp mod n`. Wide exponents (beyond the precomputed width)
    /// fall back to the context's windowed square-and-multiply; results
    /// are bit-exact either way.
    pub fn pow(&self, exp: &Ubig) -> Ubig {
        let mut scratch = vec![0; self.ctx.scratch_len()];
        match self.pow_mont(exp, &mut scratch) {
            Some(acc) => self.ctx.from_mont_limbs(&acc, &mut scratch),
            None => self.ctx.modpow(&self.base, exp),
        }
    }

    /// `self.base^exp · other.base^other_exp mod n` with one shared
    /// Montgomery reduction at the end — the fixed-base double
    /// exponentiation DGK encryption (`g^m · h^r`) runs on.
    ///
    /// Both tables must be bound to the same modulus.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the tables use different moduli.
    pub fn pow_mul(&self, exp: &Ubig, other: &FixedBaseTable, other_exp: &Ubig) -> Ubig {
        debug_assert_eq!(self.ctx.n, other.ctx.n, "tables bound to different moduli");
        let mut scratch = vec![0; self.ctx.scratch_len()];
        match (self.pow_mont(exp, &mut scratch), other.pow_mont(other_exp, &mut scratch)) {
            (Some(a), Some(b)) => {
                let mut out = vec![0; self.ctx.k];
                self.ctx.mont_mul_limbs(&a, &b, &mut out, &mut scratch);
                self.ctx.from_mont_limbs(&out, &mut scratch)
            }
            // Wide exponent: fall back to the context double-exp.
            _ => self.ctx.modpow2(&self.base, exp, &other.base, other_exp),
        }
    }
}

/// A lazily built, shareable [`MontgomeryContext`] cell.
///
/// Key types embed one cell per modulus they exponentiate under, so the
/// context is built **once per key** instead of once per `modpow` call.
/// The cell is:
///
/// * cheap to clone once resolved (the context lives behind an [`Arc`]);
/// * transparent to serialization (`#[serde(skip)]` + [`Default`]
///   rebuilds lazily after deserialize);
/// * identity-free: cells always compare equal, so derived
///   `PartialEq`/`Eq` on key types keeps its meaning.
///
/// # Examples
///
/// ```
/// use bigint::{montgomery::CachedContext, modular, Ubig};
///
/// let m = Ubig::from(1_000_003u64);
/// let cell = CachedContext::new();
/// let base = Ubig::from(7u64);
/// let exp = Ubig::from(999_999u64);
/// // First call builds the context; later calls reuse it.
/// assert_eq!(cell.modpow(&base, &exp, &m), modular::modpow(&base, &exp, &m));
/// assert!(cell.context(&m).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CachedContext {
    cell: OnceLock<Option<Arc<MontgomeryContext>>>,
}

impl CachedContext {
    /// An empty cell; the context is built on first use.
    pub const fn new() -> Self {
        CachedContext { cell: OnceLock::new() }
    }

    /// The context for modulus `m`, built on first call; `None` when `m`
    /// is even or trivial (no Montgomery form exists).
    ///
    /// Every call must pass the same modulus — the cell belongs to
    /// exactly one (checked in debug builds).
    pub fn context(&self, m: &Ubig) -> Option<&Arc<MontgomeryContext>> {
        let ctx = self.cell.get_or_init(|| MontgomeryContext::new(m).map(Arc::new)).as_ref();
        debug_assert!(
            ctx.is_none_or(|c| c.modulus() == m),
            "CachedContext reused with a different modulus"
        );
        ctx
    }

    /// `base^exp mod m` through the cached context, falling back to the
    /// uncached [`crate::modular::modpow`] dispatch for moduli without a
    /// Montgomery form. Bit-exact with the fallback in all cases.
    pub fn modpow(&self, base: &Ubig, exp: &Ubig, m: &Ubig) -> Ubig {
        match self.context(m) {
            Some(ctx) => ctx.modpow(base, exp),
            None => crate::modular::modpow(base, exp, m),
        }
    }
}

impl PartialEq for CachedContext {
    /// Caches are derived data: all cells compare equal.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for CachedContext {}

/// A lazily built, shareable [`FixedBaseTable`] cell; the fixed-base
/// companion of [`CachedContext`] with the same clone/serde/equality
/// behaviour.
#[derive(Debug, Clone, Default)]
pub struct CachedFixedBase {
    cell: OnceLock<Option<Arc<FixedBaseTable>>>,
}

impl CachedFixedBase {
    /// An empty cell; the table is built on first use.
    pub const fn new() -> Self {
        CachedFixedBase { cell: OnceLock::new() }
    }

    /// The table for `base` under `ctx`, built on first call with digit
    /// tables covering `max_exp_bits`-bit exponents.
    ///
    /// Every call must pass the same base and context — the cell belongs
    /// to exactly one (checked in debug builds).
    pub fn table(
        &self,
        ctx: &Arc<MontgomeryContext>,
        base: &Ubig,
        max_exp_bits: u64,
    ) -> &Arc<FixedBaseTable> {
        let table = self
            .cell
            .get_or_init(|| {
                Some(Arc::new(FixedBaseTable::new(Arc::clone(ctx), base, max_exp_bits)))
            })
            .as_ref()
            .expect("always built with Some");
        debug_assert_eq!(table.base(), &(base % ctx.modulus()), "CachedFixedBase base changed");
        table
    }
}

impl PartialEq for CachedFixedBase {
    /// Caches are derived data: all cells compare equal.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for CachedFixedBase {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::{modmul, modpow_basic};
    use crate::random;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_even_or_trivial_moduli() {
        assert!(MontgomeryContext::new(&Ubig::from(10u64)).is_none());
        assert!(MontgomeryContext::new(&Ubig::one()).is_none());
        assert!(MontgomeryContext::new(&Ubig::zero()).is_none());
        assert!(MontgomeryContext::new(&Ubig::from(9u64)).is_some());
    }

    #[test]
    fn word_inverse_is_exact() {
        for n0 in [1u64, 3, 5, 0xffff_ffff_ffff_fff1, 0x1234_5678_9abc_def1] {
            let inv = inv_mod_word(n0);
            assert_eq!(n0.wrapping_mul(inv), 1, "inverse of {n0:#x}");
        }
    }

    #[test]
    fn roundtrip_to_from_mont() {
        let n = Ubig::from(1_000_003u64);
        let ctx = MontgomeryContext::new(&n).unwrap();
        for x in [0u64, 1, 2, 999_999, 500_000] {
            let x = Ubig::from(x);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x);
        }
    }

    #[test]
    fn mul_matches_plain_modmul() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut n = random::gen_exact_bits(&mut rng, 192);
        n.set_bit(0, true);
        let ctx = MontgomeryContext::new(&n).unwrap();
        for _ in 0..50 {
            let a = random::gen_below(&mut rng, &n);
            let b = random::gen_below(&mut rng, &n);
            let expect = crate::modular::modmul(&a, &b, &n);
            let got = ctx.from_mont(&ctx.mul_mont(&ctx.to_mont(&a), &ctx.to_mont(&b)));
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn modpow_matches_plain_across_sizes() {
        let mut rng = StdRng::seed_from_u64(2);
        for bits in [64u64, 128, 256, 521] {
            let mut n = random::gen_exact_bits(&mut rng, bits);
            n.set_bit(0, true);
            let ctx = MontgomeryContext::new(&n).unwrap();
            for _ in 0..5 {
                let base = random::gen_below(&mut rng, &n);
                let exp = random::gen_bits(&mut rng, bits);
                assert_eq!(ctx.modpow(&base, &exp), modpow_basic(&base, &exp, &n), "bits {bits}");
            }
        }
    }

    #[test]
    fn modpow_short_exponents_use_ladder_path() {
        // Exponents below the window threshold take the binary-ladder
        // branch; check it against the reference across widths.
        let mut rng = StdRng::seed_from_u64(7);
        let mut n = random::gen_exact_bits(&mut rng, 128);
        n.set_bit(0, true);
        let ctx = MontgomeryContext::new(&n).unwrap();
        for ebits in [1u64, 5, 31, 63] {
            let base = random::gen_below(&mut rng, &n);
            let exp = random::gen_exact_bits(&mut rng, ebits);
            assert_eq!(ctx.modpow(&base, &exp), modpow_basic(&base, &exp, &n), "ebits {ebits}");
        }
    }

    #[test]
    fn modpow_edge_exponents() {
        let n = Ubig::from(101u64);
        let ctx = MontgomeryContext::new(&n).unwrap();
        assert_eq!(ctx.modpow(&Ubig::from(7u64), &Ubig::zero()), Ubig::one());
        assert_eq!(ctx.modpow(&Ubig::from(7u64), &Ubig::one()), Ubig::from(7u64));
        assert_eq!(ctx.modpow(&Ubig::zero(), &Ubig::from(5u64)), Ubig::zero());
        // Unreduced base is reduced first.
        assert_eq!(ctx.modpow(&Ubig::from(108u64), &Ubig::two()), Ubig::from(49u64));
    }

    #[test]
    fn fermat_little_theorem() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = crate::prime::gen_prime(&mut rng, 96);
        let ctx = MontgomeryContext::new(&p).unwrap();
        let exp = &p - &Ubig::one();
        for _ in 0..5 {
            let a = random::gen_range(&mut rng, &Ubig::two(), &p);
            assert_eq!(ctx.modpow(&a, &exp), Ubig::one());
        }
    }

    #[test]
    fn modpow2_matches_two_walks() {
        let mut rng = StdRng::seed_from_u64(4);
        for bits in [64u64, 128, 256] {
            let mut n = random::gen_exact_bits(&mut rng, bits);
            n.set_bit(0, true);
            let ctx = MontgomeryContext::new(&n).unwrap();
            for _ in 0..5 {
                let g = random::gen_below(&mut rng, &n);
                let h = random::gen_below(&mut rng, &n);
                let a = random::gen_bits(&mut rng, bits);
                let b = random::gen_bits(&mut rng, bits / 2);
                let expect = modmul(&modpow_basic(&g, &a, &n), &modpow_basic(&h, &b, &n), &n);
                assert_eq!(ctx.modpow2(&g, &a, &h, &b), expect, "bits {bits}");
            }
        }
    }

    #[test]
    fn modpow2_zero_exponents() {
        let n = Ubig::from(1009u64);
        let ctx = MontgomeryContext::new(&n).unwrap();
        let g = Ubig::from(3u64);
        let h = Ubig::from(5u64);
        assert_eq!(ctx.modpow2(&g, &Ubig::zero(), &h, &Ubig::zero()), Ubig::one());
        assert_eq!(
            ctx.modpow2(&g, &Ubig::from(10u64), &h, &Ubig::zero()),
            modpow_basic(&g, &Ubig::from(10u64), &n)
        );
        assert_eq!(
            ctx.modpow2(&g, &Ubig::zero(), &h, &Ubig::from(10u64)),
            modpow_basic(&h, &Ubig::from(10u64), &n)
        );
    }

    #[test]
    fn fixed_base_table_matches_modpow() {
        let mut rng = StdRng::seed_from_u64(5);
        for bits in [64u64, 128, 256] {
            let mut n = random::gen_exact_bits(&mut rng, bits);
            n.set_bit(0, true);
            let ctx = Arc::new(MontgomeryContext::new(&n).unwrap());
            let g = random::gen_below(&mut rng, &n);
            let table = FixedBaseTable::new(Arc::clone(&ctx), &g, bits);
            for ebits in [0u64, 1, 4, 17, bits / 2, bits] {
                let exp = random::gen_bits(&mut rng, ebits);
                assert_eq!(table.pow(&exp), modpow_basic(&g, &exp, &n), "bits {bits}/{ebits}");
            }
        }
    }

    #[test]
    fn fixed_base_wide_exponent_falls_back() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut n = random::gen_exact_bits(&mut rng, 128);
        n.set_bit(0, true);
        let ctx = Arc::new(MontgomeryContext::new(&n).unwrap());
        let g = random::gen_below(&mut rng, &n);
        let table = FixedBaseTable::new(Arc::clone(&ctx), &g, 16);
        let wide = random::gen_exact_bits(&mut rng, 80);
        assert_eq!(table.pow(&wide), modpow_basic(&g, &wide, &n));
    }

    #[test]
    fn fixed_base_pow_mul_is_double_exp() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut n = random::gen_exact_bits(&mut rng, 128);
        n.set_bit(0, true);
        let ctx = Arc::new(MontgomeryContext::new(&n).unwrap());
        let g = random::gen_below(&mut rng, &n);
        let h = random::gen_below(&mut rng, &n);
        let tg = FixedBaseTable::new(Arc::clone(&ctx), &g, 32);
        let th = FixedBaseTable::new(Arc::clone(&ctx), &h, 64);
        for _ in 0..10 {
            let a = random::gen_bits(&mut rng, 32);
            let b = random::gen_bits(&mut rng, 64);
            let expect = modmul(&modpow_basic(&g, &a, &n), &modpow_basic(&h, &b, &n), &n);
            assert_eq!(tg.pow_mul(&a, &th, &b), expect);
        }
        // Wide exponents route through the context double-exp fallback.
        let wide = random::gen_exact_bits(&mut rng, 90);
        let expect = modmul(&modpow_basic(&g, &wide, &n), &modpow_basic(&h, &wide, &n), &n);
        assert_eq!(tg.pow_mul(&wide, &th, &wide), expect);
    }

    #[test]
    fn cached_context_builds_once_and_matches() {
        let m = Ubig::from(1_000_003u64);
        let cell = CachedContext::new();
        let first = cell.context(&m).unwrap();
        let first_ptr = Arc::as_ptr(first);
        assert_eq!(Arc::as_ptr(cell.context(&m).unwrap()), first_ptr, "must reuse the context");
        let base = Ubig::from(123u64);
        let exp = Ubig::from(4567u64);
        assert_eq!(cell.modpow(&base, &exp, &m), modpow_basic(&base, &exp, &m));
    }

    #[test]
    fn cached_context_even_modulus_falls_back() {
        let m = Ubig::from(1000u64);
        let cell = CachedContext::new();
        assert!(cell.context(&m).is_none());
        let base = Ubig::from(123u64);
        let exp = Ubig::from(45u64);
        assert_eq!(cell.modpow(&base, &exp, &m), modpow_basic(&base, &exp, &m));
    }

    #[test]
    fn cached_cells_compare_equal_and_survive_clone() {
        let m = Ubig::from(101u64);
        let cell = CachedContext::new();
        let _ = cell.context(&m);
        let clone = cell.clone();
        assert_eq!(cell, clone);
        assert_eq!(cell, CachedContext::new());
        // The clone carries the resolved context (shared Arc).
        assert!(clone.context(&m).is_some());
    }

    #[test]
    fn modpow_multi_matches_iterated_modpow() {
        let mut rng = StdRng::seed_from_u64(9);
        for bits in [64u64, 128, 256] {
            let mut n = random::gen_exact_bits(&mut rng, bits);
            n.set_bit(0, true);
            let ctx = MontgomeryContext::new(&n).unwrap();
            for k in 1usize..=5 {
                let pairs: Vec<(Ubig, Ubig)> = (0..k)
                    .map(|_| (random::gen_below(&mut rng, &n), random::gen_bits(&mut rng, bits)))
                    .collect();
                let refs: Vec<(&Ubig, &Ubig)> = pairs.iter().map(|(b, e)| (b, e)).collect();
                let mut expect = if n.is_one() { Ubig::zero() } else { Ubig::one() };
                for (b, e) in &pairs {
                    expect = modmul(&expect, &modpow_basic(b, e, &n), &n);
                }
                assert_eq!(ctx.modpow_multi(&refs), expect, "bits {bits} k {k}");
            }
        }
    }

    #[test]
    fn modpow_multi_short_exponents_use_interleaved_ladder() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut n = random::gen_exact_bits(&mut rng, 128);
        n.set_bit(0, true);
        let ctx = MontgomeryContext::new(&n).unwrap();
        let pairs: Vec<(Ubig, Ubig)> = (0..3)
            .map(|_| (random::gen_below(&mut rng, &n), random::gen_bits(&mut rng, 20)))
            .collect();
        let refs: Vec<(&Ubig, &Ubig)> = pairs.iter().map(|(b, e)| (b, e)).collect();
        let mut expect = Ubig::one();
        for (b, e) in &pairs {
            expect = modmul(&expect, &modpow_basic(b, e, &n), &n);
        }
        assert_eq!(ctx.modpow_multi(&refs), expect);
    }

    #[test]
    fn modpow_multi_edge_cases() {
        let n = Ubig::from(101u64);
        let ctx = MontgomeryContext::new(&n).unwrap();
        // Empty product is 1.
        assert_eq!(ctx.modpow_multi(&[]), Ubig::one());
        // All-zero exponents collapse to 1 as well.
        let (b1, b2) = (Ubig::from(7u64), Ubig::from(9u64));
        let z = Ubig::zero();
        assert_eq!(ctx.modpow_multi(&[(&b1, &z), (&b2, &z)]), Ubig::one());
        // Mixed zero / non-zero exponents and unreduced bases.
        let wide = Ubig::from(108u64); // 108 ≡ 7 (mod 101)
        let e = Ubig::from(13u64);
        assert_eq!(ctx.modpow_multi(&[(&wide, &e), (&b2, &z)]), modpow_basic(&b1, &e, &n));
        // Trivial modulus 1: everything is 0.
        // (MontgomeryContext::new rejects n=1, so only n>1 applies here.)
        let one_pair = [(&b1, &e)];
        assert_eq!(ctx.modpow_multi(&one_pair), modpow_basic(&b1, &e, &n));
    }

    #[test]
    fn modpow_with_scratch_reuses_buffers_across_widths() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ws = PowScratch::new();
        for bits in [64u64, 256, 128] {
            let mut n = random::gen_exact_bits(&mut rng, bits);
            n.set_bit(0, true);
            let ctx = MontgomeryContext::new(&n).unwrap();
            // Alternate ladder-path (short) and window-path (wide)
            // exponents through the same scratch.
            for ebits in [1u64, bits, 17, bits / 2 + 64] {
                let base = random::gen_below(&mut rng, &n);
                let exp = random::gen_bits(&mut rng, ebits);
                assert_eq!(
                    ctx.modpow_with_scratch(&base, &exp, &mut ws),
                    modpow_basic(&base, &exp, &n),
                    "bits {bits} ebits {ebits}"
                );
            }
        }
    }

    #[test]
    fn karatsuba_mont_path_matches_plain_at_wide_moduli() {
        // 2048-bit modulus = 32 limbs: mul_limbs_into crosses
        // MONT_KARATSUBA_LIMBS and routes through crate::mul.
        let mut rng = StdRng::seed_from_u64(12);
        let mut n = random::gen_exact_bits(&mut rng, 2048);
        n.set_bit(0, true);
        let ctx = MontgomeryContext::new(&n).unwrap();
        let a = random::gen_below(&mut rng, &n);
        let b = random::gen_below(&mut rng, &n);
        let expect = modmul(&a, &b, &n);
        let got = ctx.from_mont(&ctx.mul_mont(&ctx.to_mont(&a), &ctx.to_mont(&b)));
        assert_eq!(got, expect);
        let exp = random::gen_exact_bits(&mut rng, 64);
        assert_eq!(ctx.modpow(&a, &exp), modpow_basic(&a, &exp, &n));
    }

    #[test]
    fn mont_mul_ablation_agrees_between_kernels() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut n = random::gen_exact_bits(&mut rng, 2048);
        n.set_bit(0, true);
        let ctx = MontgomeryContext::new(&n).unwrap();
        let a = ctx.to_mont(&random::gen_below(&mut rng, &n));
        let b = ctx.to_mont(&random::gen_below(&mut rng, &n));
        let school = ctx.mont_mul_ablation(&a, &b, false);
        let kara = ctx.mont_mul_ablation(&a, &b, true);
        assert_eq!(school, kara);
        assert_eq!(school, ctx.mul_mont(&a, &b));
    }

    #[test]
    fn cached_fixed_base_reuses_table() {
        let n = Ubig::from(1_000_003u64);
        let ctx = Arc::new(MontgomeryContext::new(&n).unwrap());
        let g = Ubig::from(29u64);
        let cell = CachedFixedBase::new();
        let t1 = Arc::as_ptr(cell.table(&ctx, &g, 64));
        let t2 = Arc::as_ptr(cell.table(&ctx, &g, 64));
        assert_eq!(t1, t2, "must reuse the table");
        let e = Ubig::from(999_999u64);
        assert_eq!(cell.table(&ctx, &g, 64).pow(&e), modpow_basic(&g, &e, &n));
    }
}
