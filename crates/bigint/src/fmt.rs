//! Formatting and parsing for [`Ubig`]: decimal `Display`/`FromStr`,
//! hexadecimal via `LowerHex`/`UpperHex`, and radix-parameterized parsing.

use std::fmt;
use std::str::FromStr;

use crate::error::ParseBigIntError;
use crate::Ubig;

impl Ubig {
    /// Parses a string in the given radix (2..=36). Accepts an optional
    /// `0x`/`0b`/`0o` prefix matching the radix, and `_` separators.
    ///
    /// ```
    /// use bigint::Ubig;
    /// assert_eq!(Ubig::from_str_radix("ff", 16).unwrap(), Ubig::from(255u64));
    /// assert_eq!(Ubig::from_str_radix("1_000", 10).unwrap(), Ubig::from(1000u64));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigIntError`] on an empty string or a digit outside
    /// the radix.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is outside `2..=36`.
    pub fn from_str_radix(s: &str, radix: u32) -> Result<Self, ParseBigIntError> {
        assert!((2..=36).contains(&radix), "radix must be in 2..=36");
        let s = match radix {
            16 => s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")).unwrap_or(s),
            8 => s.strip_prefix("0o").or_else(|| s.strip_prefix("0O")).unwrap_or(s),
            2 => s.strip_prefix("0b").or_else(|| s.strip_prefix("0B")).unwrap_or(s),
            _ => s,
        };
        let mut any = false;
        let mut acc = Ubig::zero();
        let radix_big = Ubig::from(radix as u64);
        for ch in s.chars() {
            if ch == '_' {
                continue;
            }
            let digit = ch.to_digit(radix).ok_or(ParseBigIntError::InvalidDigit(ch))?;
            acc = &(&acc * &radix_big) + &Ubig::from(digit as u64);
            any = true;
        }
        if !any {
            return Err(ParseBigIntError::Empty);
        }
        Ok(acc)
    }

    /// Renders the value in the given radix (2..=36), lowercase digits.
    ///
    /// ```
    /// use bigint::Ubig;
    /// assert_eq!(Ubig::from(255u64).to_str_radix(16), "ff");
    /// assert_eq!(Ubig::from(5u64).to_str_radix(2), "101");
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `radix` is outside `2..=36`.
    pub fn to_str_radix(&self, radix: u32) -> String {
        assert!((2..=36).contains(&radix), "radix must be in 2..=36");
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_limb(radix as u64);
            digits.push(std::char::from_digit(r as u32, radix).expect("digit < radix"));
            cur = q;
        }
        digits.iter().rev().collect()
    }
}

impl fmt::Display for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "", &self.to_str_radix(10))
    }
}

impl fmt::Debug for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ubig({})", self.to_str_radix(10))
    }
}

impl fmt::LowerHex for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0x", &self.to_str_radix(16))
    }
}

impl fmt::UpperHex for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0x", &self.to_str_radix(16).to_uppercase())
    }
}

impl fmt::Binary for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0b", &self.to_str_radix(2))
    }
}

impl fmt::Octal for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0o", &self.to_str_radix(8))
    }
}

impl FromStr for Ubig {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ubig::from_str_radix(s, 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_decimal() {
        let cases = ["0", "1", "18446744073709551616", "340282366920938463463374607431768211456"];
        for c in cases {
            let v: Ubig = c.parse().unwrap();
            assert_eq!(v.to_string(), c);
        }
    }

    #[test]
    fn hex_roundtrips() {
        let v = Ubig::from_str_radix("deadbeefcafebabe1122334455667788", 16).unwrap();
        assert_eq!(format!("{v:x}"), "deadbeefcafebabe1122334455667788");
        assert_eq!(format!("{v:X}"), "DEADBEEFCAFEBABE1122334455667788");
    }

    #[test]
    fn prefix_and_separators_accepted() {
        assert_eq!(Ubig::from_str_radix("0xff", 16).unwrap(), Ubig::from(255u64));
        assert_eq!(Ubig::from_str_radix("0b1010", 2).unwrap(), Ubig::from(10u64));
        assert_eq!(Ubig::from_str_radix("1_000_000", 10).unwrap(), Ubig::from(1_000_000u64));
    }

    #[test]
    fn parse_errors() {
        assert!(matches!("".parse::<Ubig>(), Err(ParseBigIntError::Empty)));
        assert!(matches!("12a".parse::<Ubig>(), Err(ParseBigIntError::InvalidDigit('a'))));
        assert!(matches!(Ubig::from_str_radix("_", 10), Err(ParseBigIntError::Empty)));
    }

    #[test]
    fn binary_and_octal_formatting() {
        let v = Ubig::from(64u64);
        assert_eq!(format!("{v:b}"), "1000000");
        assert_eq!(format!("{v:o}"), "100");
        assert_eq!(format!("{:#x}", Ubig::from(255u64)), "0xff");
    }

    #[test]
    fn debug_is_never_empty() {
        assert_eq!(format!("{:?}", Ubig::zero()), "Ubig(0)");
    }
}
