//! Serde support: [`Ubig`] serializes as a lowercase hex string (readable in
//! configs and logs), [`Ibig`] as a signed decimal-free hex string with an
//! optional leading `-`.

use std::fmt;

use serde::de::{self, Visitor};
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::{Ibig, Sign, Ubig};

impl Serialize for Ubig {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_str_radix(16))
    }
}

struct UbigVisitor;

impl Visitor<'_> for UbigVisitor {
    type Value = Ubig;

    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a hex string encoding an unsigned big integer")
    }

    fn visit_str<E: de::Error>(self, v: &str) -> Result<Ubig, E> {
        Ubig::from_str_radix(v, 16).map_err(E::custom)
    }

    fn visit_u64<E: de::Error>(self, v: u64) -> Result<Ubig, E> {
        Ok(Ubig::from(v))
    }
}

impl<'de> Deserialize<'de> for Ubig {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_any(UbigVisitor)
    }
}

impl Serialize for Ibig {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let hex = self.magnitude().to_str_radix(16);
        if self.is_negative() {
            serializer.serialize_str(&format!("-{hex}"))
        } else {
            serializer.serialize_str(&hex)
        }
    }
}

struct IbigVisitor;

impl Visitor<'_> for IbigVisitor {
    type Value = Ibig;

    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a hex string encoding a signed big integer")
    }

    fn visit_str<E: de::Error>(self, v: &str) -> Result<Ibig, E> {
        if let Some(rest) = v.strip_prefix('-') {
            let mag = Ubig::from_str_radix(rest, 16).map_err(E::custom)?;
            Ok(Ibig::from_sign_magnitude(Sign::Minus, mag))
        } else {
            Ubig::from_str_radix(v, 16).map(Ibig::from).map_err(E::custom)
        }
    }

    fn visit_i64<E: de::Error>(self, v: i64) -> Result<Ibig, E> {
        Ok(Ibig::from(v))
    }
}

impl<'de> Deserialize<'de> for Ibig {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_any(IbigVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal JSON-ish probe using serde's test-friendly in-memory
    /// round-trip via the `serde::de::value` module.
    #[test]
    fn ubig_roundtrip_via_str() {
        use serde::de::value::{Error as ValueError, StrDeserializer};
        use serde::de::IntoDeserializer;
        let v = Ubig::from(0xdead_beefu64);
        let hex = v.to_str_radix(16);
        let de: StrDeserializer<'_, ValueError> = hex.as_str().into_deserializer();
        let back = Ubig::deserialize(de).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn ibig_roundtrip_negative() {
        use serde::de::value::{Error as ValueError, StrDeserializer};
        use serde::de::IntoDeserializer;
        let de: StrDeserializer<'_, ValueError> = "-ff".into_deserializer();
        let back = Ibig::deserialize(de).unwrap();
        assert_eq!(back, Ibig::from(-255i64));
    }

    #[test]
    fn bad_hex_rejected() {
        use serde::de::value::{Error as ValueError, StrDeserializer};
        use serde::de::IntoDeserializer;
        let de: StrDeserializer<'_, ValueError> = "zz".into_deserializer();
        assert!(Ubig::deserialize(de).is_err());
    }
}
