//! Greatest common divisor, extended Euclidean algorithm, least common
//! multiple and modular inverse.

use crate::{Ibig, Ubig};

/// Greatest common divisor of `a` and `b` (Euclid's algorithm).
///
/// `gcd(x, 0) == x` by convention.
///
/// ```
/// use bigint::{gcd::gcd, Ubig};
/// assert_eq!(gcd(&Ubig::from(48u64), &Ubig::from(18u64)), Ubig::from(6u64));
/// ```
pub fn gcd(a: &Ubig, b: &Ubig) -> Ubig {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = &a % &b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple: `a*b / gcd(a,b)`. `lcm(x, 0) == 0`.
///
/// ```
/// use bigint::{gcd::lcm, Ubig};
/// assert_eq!(lcm(&Ubig::from(4u64), &Ubig::from(6u64)), Ubig::from(12u64));
/// ```
pub fn lcm(a: &Ubig, b: &Ubig) -> Ubig {
    if a.is_zero() || b.is_zero() {
        return Ubig::zero();
    }
    let g = gcd(a, b);
    &(a / &g) * b
}

/// Extended Euclidean algorithm: returns `(g, x, y)` with
/// `a*x + b*y == g == gcd(a, b)`.
///
/// ```
/// use bigint::{gcd::extended_gcd, Ubig, Ibig};
/// let (g, x, y) = extended_gcd(&Ubig::from(240u64), &Ubig::from(46u64));
/// assert_eq!(g, Ubig::from(2u64));
/// let check = &(&Ibig::from(240u64) * &x) + &(&Ibig::from(46u64) * &y);
/// assert_eq!(check, Ibig::from(2u64));
/// ```
pub fn extended_gcd(a: &Ubig, b: &Ubig) -> (Ubig, Ibig, Ibig) {
    let mut r0 = Ibig::from(a.clone());
    let mut r1 = Ibig::from(b.clone());
    let mut s0 = Ibig::one();
    let mut s1 = Ibig::zero();
    let mut t0 = Ibig::zero();
    let mut t1 = Ibig::one();

    while !r1.is_zero() {
        let (q, _) = r0.magnitude().div_rem(r1.magnitude());
        let q = Ibig::from(q);
        let r2 = &r0 - &(&q * &r1);
        let s2 = &s0 - &(&q * &s1);
        let t2 = &t0 - &(&q * &t1);
        r0 = r1;
        r1 = r2;
        s0 = s1;
        s1 = s2;
        t0 = t1;
        t1 = t2;
    }
    (r0.into_magnitude(), s0, t0)
}

/// Modular inverse of `a` modulo `m`: the unique `x` in `[0, m)` with
/// `a*x ≡ 1 (mod m)`, or `None` if `gcd(a, m) != 1`.
///
/// ```
/// use bigint::{gcd::modinv, Ubig};
/// let inv = modinv(&Ubig::from(3u64), &Ubig::from(7u64)).unwrap();
/// assert_eq!(inv, Ubig::from(5u64)); // 3*5 = 15 ≡ 1 (mod 7)
/// ```
pub fn modinv(a: &Ubig, m: &Ubig) -> Option<Ubig> {
    if m.is_zero() {
        return None;
    }
    let (g, x, _) = extended_gcd(a, m);
    if !g.is_one() {
        return None;
    }
    Some(x.rem_euclid(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic_identities() {
        let a = Ubig::from(360u64);
        assert_eq!(gcd(&a, &Ubig::zero()), a);
        assert_eq!(gcd(&Ubig::zero(), &a), a);
        assert_eq!(gcd(&a, &Ubig::one()), Ubig::one());
        assert_eq!(gcd(&a, &a), a);
    }

    #[test]
    fn gcd_multi_limb() {
        // gcd(2^100 * 3, 2^80 * 9) = 2^80 * 3
        let a = &(Ubig::one() << 100) * &Ubig::from(3u64);
        let b = &(Ubig::one() << 80) * &Ubig::from(9u64);
        let expect = &(Ubig::one() << 80) * &Ubig::from(3u64);
        assert_eq!(gcd(&a, &b), expect);
    }

    #[test]
    fn lcm_times_gcd_is_product() {
        let a = Ubig::from(123456u64);
        let b = Ubig::from(789012u64);
        assert_eq!(&lcm(&a, &b) * &gcd(&a, &b), &a * &b);
        assert_eq!(lcm(&a, &Ubig::zero()), Ubig::zero());
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        let pairs = [(240u64, 46u64), (17, 5), (1, 1), (u64::MAX, 2)];
        for (a, b) in pairs {
            let (ua, ub) = (Ubig::from(a), Ubig::from(b));
            let (g, x, y) = extended_gcd(&ua, &ub);
            let lhs = &(&Ibig::from(ua) * &x) + &(&Ibig::from(ub) * &y);
            assert_eq!(lhs, Ibig::from(g), "bezout for ({a},{b})");
        }
    }

    #[test]
    fn modinv_roundtrip() {
        let m = Ubig::from(1_000_000_007u64); // prime
        for a in [2u64, 3, 999_999_999, 123_456] {
            let a = Ubig::from(a);
            let inv = modinv(&a, &m).expect("prime modulus, nonzero a");
            assert_eq!(&(&a * &inv) % &m, Ubig::one());
        }
    }

    #[test]
    fn modinv_fails_when_not_coprime() {
        assert_eq!(modinv(&Ubig::from(6u64), &Ubig::from(9u64)), None);
        assert_eq!(modinv(&Ubig::from(5u64), &Ubig::zero()), None);
    }

    #[test]
    fn modinv_of_one_is_one() {
        let m = Ubig::from(97u64);
        assert_eq!(modinv(&Ubig::one(), &m), Some(Ubig::one()));
    }
}
