//! Multiplication for [`Ubig`].
//!
//! Schoolbook multiplication with a Karatsuba branch for large operands.
//! Cryptographic moduli in this workspace are small (64–2048 bits), so the
//! Karatsuba threshold is chosen conservatively.

use std::ops::{Mul, MulAssign};

use crate::ubig::wide_mul;
use crate::{Limb, Ubig};

/// Limb count above which Karatsuba is used instead of schoolbook.
const KARATSUBA_THRESHOLD: usize = 32;

/// Schoolbook `O(n*m)` multiplication.
fn mul_schoolbook(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0 as Limb; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: Limb = 0;
        for (j, &bj) in b.iter().enumerate() {
            let (lo, hi) = wide_mul(ai, bj);
            let (s1, c1) = out[i + j].overflowing_add(lo);
            let (s2, c2) = s1.overflowing_add(carry);
            out[i + j] = s2;
            carry = hi + c1 as Limb + c2 as Limb;
        }
        out[i + b.len()] = carry;
    }
    out
}

/// Karatsuba multiplication: splits both operands at `half` limbs and
/// recombines with three recursive products.
fn mul_karatsuba(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let n = a.len().max(b.len());
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    let half = n / 2;
    let (a0, a1) = split(a, half);
    let (b0, b1) = split(b, half);

    let z0 = Ubig::from_limbs(mul_karatsuba(&a0.limbs, &b0.limbs));
    let z2 = Ubig::from_limbs(mul_karatsuba(&a1.limbs, &b1.limbs));
    let sa = &a0 + &a1;
    let sb = &b0 + &b1;
    let z1_full = Ubig::from_limbs(mul_karatsuba(&sa.limbs, &sb.limbs));
    // z1 = (a0+a1)(b0+b1) - z0 - z2 >= 0 always.
    let z1 = &(&z1_full - &z0) - &z2;

    let mut result = z0;
    let mut mid = z1;
    mid.shl_limbs(half);
    result += &mid;
    let mut top = z2;
    top.shl_limbs(2 * half);
    result += &top;
    result.limbs
}

fn split(x: &[Limb], at: usize) -> (Ubig, Ubig) {
    if x.len() <= at {
        (Ubig::from_limbs(x.to_vec()), Ubig::zero())
    } else {
        (Ubig::from_limbs(x[..at].to_vec()), Ubig::from_limbs(x[at..].to_vec()))
    }
}

impl Ubig {
    /// Shifts left by whole limbs (multiply by `2^(64*n)`).
    pub(crate) fn shl_limbs(&mut self, n: usize) {
        if self.is_zero() || n == 0 {
            return;
        }
        let mut limbs = vec![0; n];
        limbs.extend_from_slice(&self.limbs);
        self.limbs = limbs;
    }

    /// Squares `self`.
    ///
    /// ```
    /// use bigint::Ubig;
    /// assert_eq!(Ubig::from(12u64).square(), Ubig::from(144u64));
    /// ```
    pub fn square(&self) -> Ubig {
        self * self
    }
}

impl Mul<&Ubig> for &Ubig {
    type Output = Ubig;
    fn mul(self, rhs: &Ubig) -> Ubig {
        Ubig::from_limbs(mul_karatsuba(&self.limbs, &rhs.limbs))
    }
}

impl Mul for Ubig {
    type Output = Ubig;
    fn mul(self, rhs: Ubig) -> Ubig {
        (&self).mul(&rhs)
    }
}

impl Mul<u64> for &Ubig {
    type Output = Ubig;
    fn mul(self, rhs: u64) -> Ubig {
        self * &Ubig::from(rhs)
    }
}

impl MulAssign<&Ubig> for Ubig {
    fn mul_assign(&mut self, rhs: &Ubig) {
        let out = (&*self) * rhs;
        *self = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_by_zero_and_one() {
        let x = Ubig::from_limbs(vec![1, 2, 3]);
        assert_eq!(&x * &Ubig::zero(), Ubig::zero());
        assert_eq!(&x * &Ubig::one(), x);
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xffff_ffff_ffffu64;
        let b = 0x1234_5678_9abcu64;
        let prod = a as u128 * b as u128;
        assert_eq!((&Ubig::from(a) * &Ubig::from(b)).to_u128(), Some(prod));
    }

    #[test]
    fn mul_is_commutative_multi_limb() {
        let a = Ubig::from_limbs(vec![u64::MAX, 5, 17]);
        let b = Ubig::from_limbs(vec![3, u64::MAX]);
        assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn karatsuba_agrees_with_schoolbook() {
        // Build operands wide enough to trip the Karatsuba branch.
        let a: Vec<Limb> = (0..80).map(|i| (i as u64).wrapping_mul(0x9e3779b97f4a7c15)).collect();
        let b: Vec<Limb> =
            (0..70).map(|i| (i as u64).wrapping_mul(0xc2b2ae3d27d4eb4f) ^ 0xff).collect();
        let kara = mul_karatsuba(&a, &b);
        let school = mul_schoolbook(&a, &b);
        assert_eq!(Ubig::from_limbs(kara), Ubig::from_limbs(school));
    }

    #[test]
    fn square_matches_mul() {
        let x = Ubig::from_limbs(vec![0xdead_beef, 42, 7]);
        assert_eq!(x.square(), &x * &x);
    }

    #[test]
    fn shl_limbs_scales_by_2_64() {
        let mut x = Ubig::from(3u64);
        x.shl_limbs(2);
        assert_eq!(x.as_limbs(), &[0, 0, 3]);
        let mut z = Ubig::zero();
        z.shl_limbs(5);
        assert!(z.is_zero());
    }

    #[test]
    fn distributes_over_addition() {
        let a = Ubig::from_limbs(vec![11, 13]);
        let b = Ubig::from_limbs(vec![17, 19]);
        let c = Ubig::from_limbs(vec![23, 29]);
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }
}
