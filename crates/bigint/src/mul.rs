//! Multiplication for [`Ubig`].
//!
//! Schoolbook multiplication with a Karatsuba branch for large operands.
//! Cryptographic moduli in this workspace are small (64–2048 bits), so the
//! Karatsuba threshold is chosen conservatively.

use std::ops::{Mul, MulAssign};

use crate::ubig::wide_mul;
use crate::{Limb, Ubig};

/// Limb count above which Karatsuba is used instead of schoolbook.
const KARATSUBA_THRESHOLD: usize = 32;

/// Schoolbook `O(n*m)` multiplication.
fn mul_schoolbook(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0 as Limb; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: Limb = 0;
        for (j, &bj) in b.iter().enumerate() {
            let (lo, hi) = wide_mul(ai, bj);
            let (s1, c1) = out[i + j].overflowing_add(lo);
            let (s2, c2) = s1.overflowing_add(carry);
            out[i + j] = s2;
            carry = hi + c1 as Limb + c2 as Limb;
        }
        out[i + b.len()] = carry;
    }
    out
}

/// Karatsuba multiplication: splits both operands at `half` limbs and
/// recombines with three recursive products. The recombination runs
/// entirely on limb slices — no `Ubig` temporaries, no shifted copies —
/// because at the ~2× threshold widths where one recursion level fires,
/// the 25% saving in limb products is smaller than the cost of naive
/// allocate-and-shift recombination.
fn mul_karatsuba(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    let half = a.len().max(b.len()) / 2;
    let (a0, a1) = a.split_at(half.min(a.len()));
    let (b0, b1) = b.split_at(half.min(b.len()));

    let z0 = mul_karatsuba(a0, b0);
    let z2 = mul_karatsuba(a1, b1);
    let sa = add_limbs(a0, a1);
    let sb = add_limbs(b0, b1);
    // z1 = (a0+a1)(b0+b1) - z0 - z2 >= 0 always.
    let mut z1 = mul_karatsuba(&sa, &sb);
    sub_limbs_in_place(&mut z1, &z0);
    sub_limbs_in_place(&mut z1, &z2);

    let mut out = vec![0 as Limb; a.len() + b.len()];
    out[..z0.len()].copy_from_slice(&z0);
    add_limbs_at(&mut out, &z1, half);
    add_limbs_at(&mut out, &z2, 2 * half);
    out
}

/// `a + b` over raw limb slices.
fn add_limbs(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry: Limb = 0;
    for (i, &l) in long.iter().enumerate() {
        let s = short.get(i).copied().unwrap_or(0);
        let (v1, c1) = l.overflowing_add(s);
        let (v2, c2) = v1.overflowing_add(carry);
        out.push(v2);
        carry = c1 as Limb + c2 as Limb;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `a -= b` over raw limb slices; the caller guarantees `a >= b`.
fn sub_limbs_in_place(a: &mut [Limb], b: &[Limb]) {
    debug_assert!(b.len() <= a.len(), "karatsuba z1 holds the widest product");
    let mut borrow: Limb = 0;
    for (i, limb) in a.iter_mut().enumerate() {
        let s = b.get(i).copied().unwrap_or(0);
        let (v1, b1) = limb.overflowing_sub(s);
        let (v2, b2) = v1.overflowing_sub(borrow);
        *limb = v2;
        borrow = b1 as Limb + b2 as Limb;
        if i >= b.len() && borrow == 0 {
            break;
        }
    }
    debug_assert_eq!(borrow, 0, "karatsuba z1 is non-negative");
}

/// `out += src << (64·at)` in place; the true product always fits `out`,
/// so any `src` limbs past the end are zeros.
fn add_limbs_at(out: &mut [Limb], src: &[Limb], at: usize) {
    let mut carry: Limb = 0;
    let mut i = 0;
    while i < src.len() || carry != 0 {
        let s = src.get(i).copied().unwrap_or(0);
        let Some(slot) = out.get_mut(at + i) else {
            debug_assert!(s == 0 && carry == 0, "karatsuba recombination overflow");
            break;
        };
        let (v1, c1) = slot.overflowing_add(s);
        let (v2, c2) = v1.overflowing_add(carry);
        *slot = v2;
        carry = c1 as Limb + c2 as Limb;
        i += 1;
    }
}

/// Limb-level product with the same Karatsuba/schoolbook dispatch as the
/// [`Mul`] impl; the Montgomery kernels call this for wide operands so
/// 2048-bit `n²` multiplies stop paying schoolbook `O(limbs²)`.
pub(crate) fn mul_limbs(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    mul_karatsuba(a, b)
}

/// Forces one multiplication algorithm for benchmark ablations:
/// `karatsuba = false` pins schoolbook, `true` uses the production
/// dispatch (Karatsuba above [`KARATSUBA_THRESHOLD`] limbs). Not part of
/// the public API surface.
#[doc(hidden)]
pub fn mul_for_ablation(a: &Ubig, b: &Ubig, karatsuba: bool) -> Ubig {
    if karatsuba {
        Ubig::from_limbs(mul_karatsuba(&a.limbs, &b.limbs))
    } else {
        Ubig::from_limbs(mul_schoolbook(&a.limbs, &b.limbs))
    }
}

impl Ubig {
    /// Squares `self`.
    ///
    /// ```
    /// use bigint::Ubig;
    /// assert_eq!(Ubig::from(12u64).square(), Ubig::from(144u64));
    /// ```
    pub fn square(&self) -> Ubig {
        self * self
    }
}

impl Mul<&Ubig> for &Ubig {
    type Output = Ubig;
    fn mul(self, rhs: &Ubig) -> Ubig {
        Ubig::from_limbs(mul_karatsuba(&self.limbs, &rhs.limbs))
    }
}

impl Mul for Ubig {
    type Output = Ubig;
    fn mul(self, rhs: Ubig) -> Ubig {
        (&self).mul(&rhs)
    }
}

impl Mul<u64> for &Ubig {
    type Output = Ubig;
    fn mul(self, rhs: u64) -> Ubig {
        self * &Ubig::from(rhs)
    }
}

impl MulAssign<&Ubig> for Ubig {
    fn mul_assign(&mut self, rhs: &Ubig) {
        let out = (&*self) * rhs;
        *self = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_by_zero_and_one() {
        let x = Ubig::from_limbs(vec![1, 2, 3]);
        assert_eq!(&x * &Ubig::zero(), Ubig::zero());
        assert_eq!(&x * &Ubig::one(), x);
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xffff_ffff_ffffu64;
        let b = 0x1234_5678_9abcu64;
        let prod = a as u128 * b as u128;
        assert_eq!((&Ubig::from(a) * &Ubig::from(b)).to_u128(), Some(prod));
    }

    #[test]
    fn mul_is_commutative_multi_limb() {
        let a = Ubig::from_limbs(vec![u64::MAX, 5, 17]);
        let b = Ubig::from_limbs(vec![3, u64::MAX]);
        assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn karatsuba_agrees_with_schoolbook() {
        // Build operands wide enough to trip the Karatsuba branch.
        let a: Vec<Limb> = (0..80).map(|i| (i as u64).wrapping_mul(0x9e3779b97f4a7c15)).collect();
        let b: Vec<Limb> =
            (0..70).map(|i| (i as u64).wrapping_mul(0xc2b2ae3d27d4eb4f) ^ 0xff).collect();
        let kara = mul_karatsuba(&a, &b);
        let school = mul_schoolbook(&a, &b);
        assert_eq!(Ubig::from_limbs(kara), Ubig::from_limbs(school));
    }

    #[test]
    fn square_matches_mul() {
        let x = Ubig::from_limbs(vec![0xdead_beef, 42, 7]);
        assert_eq!(x.square(), &x * &x);
    }

    #[test]
    fn distributes_over_addition() {
        let a = Ubig::from_limbs(vec![11, 13]);
        let b = Ubig::from_limbs(vec![17, 19]);
        let c = Ubig::from_limbs(vec![23, 29]);
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }
}
