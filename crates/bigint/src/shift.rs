//! Bit-shift operators for [`Ubig`].

use std::ops::{Shl, Shr};

use crate::{Limb, Ubig, LIMB_BITS};

impl Shl<u32> for &Ubig {
    type Output = Ubig;
    fn shl(self, shift: u32) -> Ubig {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        let limb_shift = (shift / LIMB_BITS) as usize;
        let bit_shift = shift % LIMB_BITS;
        let mut limbs = vec![0 as Limb; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry: Limb = 0;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        Ubig::from_limbs(limbs)
    }
}

impl Shl<u32> for Ubig {
    type Output = Ubig;
    fn shl(self, shift: u32) -> Ubig {
        (&self) << shift
    }
}

impl Shr<u32> for &Ubig {
    type Output = Ubig;
    fn shr(self, shift: u32) -> Ubig {
        let limb_shift = (shift / LIMB_BITS) as usize;
        if limb_shift >= self.limbs.len() {
            return Ubig::zero();
        }
        let bit_shift = shift % LIMB_BITS;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for (i, &l) in src.iter().enumerate() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                limbs.push((l >> bit_shift) | (hi << (LIMB_BITS - bit_shift)));
            }
        }
        Ubig::from_limbs(limbs)
    }
}

impl Shr<u32> for Ubig {
    type Output = Ubig;
    fn shr(self, shift: u32) -> Ubig {
        (&self) >> shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shl_matches_u128() {
        for shift in [0u32, 1, 7, 63, 64, 65, 100] {
            let v = 0x0123_4567_89ab_cdefu64;
            let expect = (v as u128) << shift.min(64);
            if shift <= 64 {
                assert_eq!((Ubig::from(v) << shift).to_u128(), Some(expect));
            }
        }
    }

    #[test]
    fn shl_by_multiple_of_limb() {
        let v = Ubig::from(9u64);
        assert_eq!((&v << 128).as_limbs(), &[0, 0, 9]);
    }

    #[test]
    fn shr_matches_u128() {
        let v = 0xfedc_ba98_7654_3210_0123_4567_89ab_cdefu128;
        for shift in [0u32, 1, 8, 63, 64, 65, 127] {
            assert_eq!((Ubig::from(v) >> shift).to_u128(), Some(v >> shift));
        }
    }

    #[test]
    fn shr_to_zero() {
        assert!((Ubig::from(u64::MAX) >> 64).is_zero());
        assert!((Ubig::zero() >> 3).is_zero());
    }

    #[test]
    fn shl_then_shr_roundtrips() {
        let v = Ubig::from_limbs(vec![0xdead_beef, 0xcafe]);
        for s in [0u32, 5, 64, 130] {
            assert_eq!(&(&v << s) >> s, v);
        }
    }
}
