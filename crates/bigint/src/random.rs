//! Uniform random generation of big integers.

use rand::Rng;

use crate::{Limb, Ubig, LIMB_BITS};

/// Samples a uniform integer in `[0, bound)` by rejection sampling.
///
/// ```
/// use bigint::{random, Ubig};
/// let mut rng = rand::thread_rng();
/// let bound = Ubig::from(1000u64);
/// let x = random::gen_below(&mut rng, &bound);
/// assert!(x < bound);
/// ```
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn gen_below<R: Rng + ?Sized>(rng: &mut R, bound: &Ubig) -> Ubig {
    assert!(!bound.is_zero(), "gen_below bound must be positive");
    let bits = bound.bits();
    loop {
        let candidate = gen_bits(rng, bits);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// Samples a uniform integer in `[low, high)`.
///
/// # Panics
///
/// Panics if `low >= high`.
pub fn gen_range<R: Rng + ?Sized>(rng: &mut R, low: &Ubig, high: &Ubig) -> Ubig {
    assert!(low < high, "gen_range requires low < high");
    let width = high.checked_sub(low).expect("high > low");
    low + &gen_below(rng, &width)
}

/// Samples a uniform integer with *at most* `bits` bits (i.e. in `[0, 2^bits)`).
pub fn gen_bits<R: Rng + ?Sized>(rng: &mut R, bits: u64) -> Ubig {
    if bits == 0 {
        return Ubig::zero();
    }
    let limbs_needed = bits.div_ceil(LIMB_BITS as u64) as usize;
    let mut limbs: Vec<Limb> = (0..limbs_needed).map(|_| rng.gen()).collect();
    let top_bits = bits % LIMB_BITS as u64;
    if top_bits != 0 {
        let mask = (1u64 << top_bits) - 1;
        *limbs.last_mut().expect("at least one limb") &= mask;
    }
    Ubig::from_limbs(limbs)
}

/// Samples a uniform integer with *exactly* `bits` bits (top bit set), i.e.
/// in `[2^(bits-1), 2^bits)`.
///
/// # Panics
///
/// Panics if `bits` is zero.
pub fn gen_exact_bits<R: Rng + ?Sized>(rng: &mut R, bits: u64) -> Ubig {
    assert!(bits > 0, "gen_exact_bits requires bits > 0");
    let mut v = gen_bits(rng, bits);
    v.set_bit(bits - 1, true);
    v
}

/// Samples a uniform integer in `[1, bound)` — handy for unit-group elements.
///
/// # Panics
///
/// Panics if `bound <= 1`.
pub fn gen_positive_below<R: Rng + ?Sized>(rng: &mut R, bound: &Ubig) -> Ubig {
    assert!(*bound > Ubig::one(), "bound must exceed 1");
    loop {
        let candidate = gen_below(rng, bound);
        if !candidate.is_zero() {
            return candidate;
        }
    }
}

/// Samples a uniform element of the multiplicative group `Z_n^*`, i.e. a
/// value in `[1, n)` coprime to `n`.
///
/// # Panics
///
/// Panics if `n <= 1`.
pub fn gen_coprime<R: Rng + ?Sized>(rng: &mut R, n: &Ubig) -> Ubig {
    loop {
        let candidate = gen_positive_below(rng, n);
        if crate::gcd::gcd(&candidate, n).is_one() {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xfeed_beef)
    }

    #[test]
    fn gen_below_respects_bound() {
        let mut r = rng();
        let bound = Ubig::from(17u64);
        for _ in 0..200 {
            assert!(gen_below(&mut r, &bound) < bound);
        }
    }

    #[test]
    fn gen_below_covers_small_range() {
        let mut r = rng();
        let bound = Ubig::from(4u64);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[gen_below(&mut r, &bound).to_u64().unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear: {seen:?}");
    }

    #[test]
    fn gen_exact_bits_sets_top_bit() {
        let mut r = rng();
        for bits in [1u64, 5, 64, 65, 130] {
            let v = gen_exact_bits(&mut r, bits);
            assert_eq!(v.bits(), bits, "bits={bits}");
        }
    }

    #[test]
    fn gen_bits_zero_is_zero() {
        let mut r = rng();
        assert!(gen_bits(&mut r, 0).is_zero());
    }

    #[test]
    fn gen_range_within() {
        let mut r = rng();
        let low = Ubig::from(100u64);
        let high = Ubig::from(110u64);
        for _ in 0..100 {
            let v = gen_range(&mut r, &low, &high);
            assert!(v >= low && v < high);
        }
    }

    #[test]
    fn gen_coprime_is_coprime() {
        let mut r = rng();
        let n = Ubig::from(360u64);
        for _ in 0..50 {
            let v = gen_coprime(&mut r, &n);
            assert!(crate::gcd::gcd(&v, &n).is_one());
        }
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = gen_bits(&mut rng(), 256);
        let b = gen_bits(&mut rng(), 256);
        assert_eq!(a, b);
    }
}
