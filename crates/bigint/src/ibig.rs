//! Signed arbitrary-precision integers: a sign-and-magnitude wrapper over
//! [`Ubig`], used by the extended Euclidean algorithm and by protocol code
//! that manipulates signed additive shares.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};
use std::str::FromStr;

use crate::error::ParseBigIntError;
use crate::Ubig;

/// Sign of an [`Ibig`]. Zero is canonically [`Sign::Plus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Non-negative.
    Plus,
    /// Strictly negative.
    Minus,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }
}

/// A signed arbitrary-precision integer.
///
/// Invariant: the magnitude of a [`Sign::Minus`] value is never zero.
///
/// # Examples
///
/// ```
/// use bigint::Ibig;
///
/// let a = Ibig::from(-5i64);
/// let b = Ibig::from(3i64);
/// assert_eq!((&a + &b).to_string(), "-2");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ibig {
    sign: Sign,
    magnitude: Ubig,
}

impl Ibig {
    /// The value `0`.
    pub fn zero() -> Self {
        Ibig { sign: Sign::Plus, magnitude: Ubig::zero() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Ibig { sign: Sign::Plus, magnitude: Ubig::one() }
    }

    /// Builds from a sign and magnitude, normalizing `-0` to `+0`.
    pub fn from_sign_magnitude(sign: Sign, magnitude: Ubig) -> Self {
        if magnitude.is_zero() {
            Ibig::zero()
        } else {
            Ibig { sign, magnitude }
        }
    }

    /// The sign of the value (zero is `Plus`).
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Borrow the magnitude `|self|`.
    pub fn magnitude(&self) -> &Ubig {
        &self.magnitude
    }

    /// Consumes `self`, returning the magnitude.
    pub fn into_magnitude(self) -> Ubig {
        self.magnitude
    }

    /// Whether `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.magnitude.is_zero()
    }

    /// Whether `self < 0`.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// The non-negative canonical residue of `self` modulo `m`, in `[0, m)`.
    ///
    /// ```
    /// use bigint::{Ibig, Ubig};
    /// let x = Ibig::from(-3i64);
    /// assert_eq!(x.rem_euclid(&Ubig::from(10u64)), Ubig::from(7u64));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem_euclid(&self, m: &Ubig) -> Ubig {
        let r = &self.magnitude % m;
        match self.sign {
            Sign::Plus => r,
            Sign::Minus => {
                if r.is_zero() {
                    r
                } else {
                    m - &r
                }
            }
        }
    }

    /// Converts to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        let mag = self.magnitude.to_u128()?;
        match self.sign {
            Sign::Plus => i128::try_from(mag).ok(),
            Sign::Minus => {
                if mag == 1u128 << 127 {
                    Some(i128::MIN)
                } else {
                    i128::try_from(mag).ok().map(|v| -v)
                }
            }
        }
    }
}

impl From<Ubig> for Ibig {
    fn from(magnitude: Ubig) -> Self {
        Ibig { sign: Sign::Plus, magnitude }
    }
}

impl From<i64> for Ibig {
    fn from(v: i64) -> Self {
        Ibig::from(v as i128)
    }
}

impl From<u64> for Ibig {
    fn from(v: u64) -> Self {
        Ibig::from(Ubig::from(v))
    }
}

impl From<i128> for Ibig {
    fn from(v: i128) -> Self {
        if v < 0 {
            Ibig::from_sign_magnitude(Sign::Minus, Ubig::from(v.unsigned_abs()))
        } else {
            Ibig::from(Ubig::from(v as u128))
        }
    }
}

impl Neg for Ibig {
    type Output = Ibig;
    fn neg(self) -> Ibig {
        Ibig::from_sign_magnitude(self.sign.flip(), self.magnitude)
    }
}

impl Neg for &Ibig {
    type Output = Ibig;
    fn neg(self) -> Ibig {
        Ibig::from_sign_magnitude(self.sign.flip(), self.magnitude.clone())
    }
}

impl Add<&Ibig> for &Ibig {
    type Output = Ibig;
    fn add(self, rhs: &Ibig) -> Ibig {
        if self.sign == rhs.sign {
            Ibig::from_sign_magnitude(self.sign, &self.magnitude + &rhs.magnitude)
        } else {
            // Opposite signs: subtract smaller magnitude from larger.
            match self.magnitude.cmp(&rhs.magnitude) {
                Ordering::Equal => Ibig::zero(),
                Ordering::Greater => Ibig::from_sign_magnitude(
                    self.sign,
                    self.magnitude.checked_sub(&rhs.magnitude).expect("self larger"),
                ),
                Ordering::Less => Ibig::from_sign_magnitude(
                    rhs.sign,
                    rhs.magnitude.checked_sub(&self.magnitude).expect("rhs larger"),
                ),
            }
        }
    }
}

impl Add for Ibig {
    type Output = Ibig;
    fn add(self, rhs: Ibig) -> Ibig {
        (&self) + (&rhs)
    }
}

impl Sub<&Ibig> for &Ibig {
    type Output = Ibig;
    fn sub(self, rhs: &Ibig) -> Ibig {
        self + &(-rhs)
    }
}

impl Sub for Ibig {
    type Output = Ibig;
    fn sub(self, rhs: Ibig) -> Ibig {
        (&self) - (&rhs)
    }
}

impl Mul<&Ibig> for &Ibig {
    type Output = Ibig;
    fn mul(self, rhs: &Ibig) -> Ibig {
        let sign = if self.sign == rhs.sign { Sign::Plus } else { Sign::Minus };
        Ibig::from_sign_magnitude(sign, &self.magnitude * &rhs.magnitude)
    }
}

impl Mul for Ibig {
    type Output = Ibig;
    fn mul(self, rhs: Ibig) -> Ibig {
        (&self) * (&rhs)
    }
}

impl Ord for Ibig {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Plus, Sign::Minus) => Ordering::Greater,
            (Sign::Minus, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => self.magnitude.cmp(&other.magnitude),
            (Sign::Minus, Sign::Minus) => other.magnitude.cmp(&self.magnitude),
        }
    }
}

impl PartialOrd for Ibig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Ibig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.magnitude.to_str_radix(10);
        f.pad_integral(self.sign == Sign::Plus, "", &s)
    }
}

impl fmt::Debug for Ibig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ibig({self})")
    }
}

impl FromStr for Ibig {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix('-') {
            Ok(Ibig::from_sign_magnitude(Sign::Minus, rest.parse()?))
        } else {
            let rest = s.strip_prefix('+').unwrap_or(s);
            Ok(Ibig::from(rest.parse::<Ubig>()?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_zero_is_normalized() {
        let z = Ibig::from_sign_magnitude(Sign::Minus, Ubig::zero());
        assert_eq!(z, Ibig::zero());
        assert_eq!(z.sign(), Sign::Plus);
    }

    #[test]
    fn signed_arithmetic_matches_i128() {
        let pairs = [(5i128, 3i128), (-5, 3), (5, -3), (-5, -3), (0, -7), (1 << 62, -(1 << 61))];
        for (a, b) in pairs {
            let (ba, bb) = (Ibig::from(a), Ibig::from(b));
            assert_eq!((&ba + &bb).to_i128(), Some(a + b), "{a}+{b}");
            assert_eq!((&ba - &bb).to_i128(), Some(a - b), "{a}-{b}");
            assert_eq!((&ba * &bb).to_i128(), Some(a * b), "{a}*{b}");
        }
    }

    #[test]
    fn ordering() {
        let vals = [-10i64, -1, 0, 1, 10];
        for &x in &vals {
            for &y in &vals {
                assert_eq!(Ibig::from(x).cmp(&Ibig::from(y)), x.cmp(&y), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn rem_euclid_always_canonical() {
        let m = Ubig::from(7u64);
        for v in [-20i64, -7, -1, 0, 1, 6, 7, 20] {
            let got = Ibig::from(v).rem_euclid(&m).to_u64().unwrap() as i64;
            assert_eq!(got, v.rem_euclid(7), "value {v}");
        }
    }

    #[test]
    fn display_and_parse() {
        for s in ["-123456789012345678901234567890", "0", "42"] {
            let v: Ibig = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!("+5".parse::<Ibig>().unwrap(), Ibig::from(5i64));
    }

    #[test]
    fn neg_is_involutive() {
        let v = Ibig::from(-99i64);
        assert_eq!(-(-v.clone()), v);
    }

    #[test]
    fn i128_min_roundtrip() {
        assert_eq!(Ibig::from(i128::MIN).to_i128(), Some(i128::MIN));
    }
}
