//! Division and remainder for [`Ubig`], via Knuth's Algorithm D
//! (TAOCP Vol. 2, 4.3.1) with 64-bit limbs.

use std::ops::{Div, Rem};

use crate::{DoubleLimb, Limb, Ubig, LIMB_BITS};

impl Ubig {
    /// Computes `(self / divisor, self % divisor)` in one pass.
    ///
    /// ```
    /// use bigint::Ubig;
    /// let (q, r) = Ubig::from(100u64).div_rem(&Ubig::from(7u64));
    /// assert_eq!(q, Ubig::from(14u64));
    /// assert_eq!(r, Ubig::from(2u64));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Ubig) -> (Ubig, Ubig) {
        assert!(!divisor.is_zero(), "division by zero Ubig");
        if self < divisor {
            return (Ubig::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_limb(divisor.limbs[0]);
            return (q, Ubig::from(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Divides by a single limb, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem_limb(&self, divisor: Limb) -> (Ubig, Limb) {
        assert!(divisor != 0, "division by zero limb");
        let mut quotient = vec![0 as Limb; self.limbs.len()];
        let mut rem: DoubleLimb = 0;
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let acc = (rem << LIMB_BITS) | limb as DoubleLimb;
            quotient[i] = (acc / divisor as DoubleLimb) as Limb;
            rem = acc % divisor as DoubleLimb;
        }
        (Ubig::from_limbs(quotient), rem as Limb)
    }

    /// Knuth Algorithm D for multi-limb divisors.
    fn div_rem_knuth(&self, divisor: &Ubig) -> (Ubig, Ubig) {
        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().expect("multi-limb").leading_zeros();
        let u = self << shift; // dividend, may gain a limb
        let v = divisor << shift;
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        // Working copy of the dividend with one extra high limb.
        let mut un = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let v_top = vn[n - 1];
        let v_next = vn[n - 2];

        let mut q = vec![0 as Limb; m + 1];

        // D2..D7: main loop over quotient digits, most significant first.
        for j in (0..=m).rev() {
            // D3: estimate q̂ from the top two limbs of the current window.
            let top = ((un[j + n] as DoubleLimb) << LIMB_BITS) | un[j + n - 1] as DoubleLimb;
            let mut qhat = top / v_top as DoubleLimb;
            let mut rhat = top % v_top as DoubleLimb;

            // Refine: while q̂ is a full limb too large or overshoots the
            // next limb, decrement.
            while qhat >> LIMB_BITS != 0
                || qhat * v_next as DoubleLimb > ((rhat << LIMB_BITS) | un[j + n - 2] as DoubleLimb)
            {
                qhat -= 1;
                rhat += v_top as DoubleLimb;
                if rhat >> LIMB_BITS != 0 {
                    break;
                }
            }

            // D4: multiply-and-subtract q̂ * v from the window.
            let mut borrow: i128 = 0;
            let mut carry: DoubleLimb = 0;
            for i in 0..n {
                let p = qhat * vn[i] as DoubleLimb + carry;
                carry = p >> LIMB_BITS;
                let sub = (un[j + i] as i128) - ((p as Limb) as i128) - borrow;
                un[j + i] = sub as Limb; // two's complement wrap is intended
                borrow = if sub < 0 { 1 } else { 0 };
            }
            let sub = (un[j + n] as i128) - (carry as i128) - borrow;
            un[j + n] = sub as Limb;

            // D5/D6: if we subtracted too much, add back one divisor.
            if sub < 0 {
                qhat -= 1;
                let mut c: DoubleLimb = 0;
                for i in 0..n {
                    let s = un[j + i] as DoubleLimb + vn[i] as DoubleLimb + c;
                    un[j + i] = s as Limb;
                    c = s >> LIMB_BITS;
                }
                un[j + n] = (un[j + n] as DoubleLimb + c) as Limb;
            }

            q[j] = qhat as Limb;
        }

        // D8: denormalize the remainder.
        let rem = Ubig::from_limbs(un[..n].to_vec()) >> shift;
        (Ubig::from_limbs(q), rem)
    }

    /// `self % modulus` as a convenience wrapper over [`Ubig::div_rem`].
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn rem_of(&self, modulus: &Ubig) -> Ubig {
        self.div_rem(modulus).1
    }
}

impl Div<&Ubig> for &Ubig {
    type Output = Ubig;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: &Ubig) -> Ubig {
        self.div_rem(rhs).0
    }
}

impl Div for Ubig {
    type Output = Ubig;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Ubig) -> Ubig {
        self.div_rem(&rhs).0
    }
}

impl Rem<&Ubig> for &Ubig {
    type Output = Ubig;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn rem(self, rhs: &Ubig) -> Ubig {
        self.div_rem(rhs).1
    }
}

impl Rem for Ubig {
    type Output = Ubig;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn rem(self, rhs: Ubig) -> Ubig {
        self.div_rem(&rhs).1
    }
}

impl Rem<&Ubig> for Ubig {
    type Output = Ubig;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn rem(self, rhs: &Ubig) -> Ubig {
        self.div_rem(rhs).1
    }
}

impl Div<&Ubig> for Ubig {
    type Output = Ubig;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: &Ubig) -> Ubig {
        self.div_rem(rhs).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: u128, b: u128) {
        let (q, r) = Ubig::from(a).div_rem(&Ubig::from(b));
        assert_eq!(q.to_u128(), Some(a / b), "quotient for {a}/{b}");
        assert_eq!(r.to_u128(), Some(a % b), "remainder for {a}%{b}");
    }

    #[test]
    fn small_cases_match_u128() {
        check(0, 1);
        check(1, 1);
        check(100, 7);
        check(u64::MAX as u128, 2);
        check(u128::MAX, 3);
        check(u128::MAX, u64::MAX as u128);
        check(u128::MAX, u128::MAX);
        check(0x1234_5678_9abc_def0_1122_3344, 0xffff_ffff_0001);
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let (q, r) = Ubig::from(5u64).div_rem(&Ubig::from(100u64));
        assert!(q.is_zero());
        assert_eq!(r, Ubig::from(5u64));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Ubig::one().div_rem(&Ubig::zero());
    }

    #[test]
    fn multi_limb_reconstruction() {
        // For a spread of multi-limb values, verify a = q*b + r and r < b.
        let samples = [
            Ubig::from_limbs(vec![u64::MAX, u64::MAX, u64::MAX, 1]),
            Ubig::from_limbs(vec![0, 0, 1]),
            Ubig::from_limbs(vec![0xdead_beef, 0xcafe_babe, 0x1234]),
        ];
        let divisors = [
            Ubig::from_limbs(vec![1, 1]),
            Ubig::from_limbs(vec![u64::MAX, 1]),
            Ubig::from_limbs(vec![0x8000_0000_0000_0000, 0x8000_0000_0000_0000]),
            Ubig::from(3u64),
        ];
        for a in &samples {
            for b in &divisors {
                let (q, r) = a.div_rem(b);
                assert!(r < *b, "remainder must be < divisor");
                assert_eq!(&(&q * b) + &r, *a, "reconstruction failed");
            }
        }
    }

    #[test]
    fn knuth_addback_branch() {
        // A case crafted to hit the rare D6 add-back: dividend with
        // pattern forcing qhat overestimation.
        let a = Ubig::from_limbs(vec![0, u64::MAX - 1, u64::MAX]);
        let b = Ubig::from_limbs(vec![u64::MAX, u64::MAX]);
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn div_rem_limb_matches_generic() {
        let a = Ubig::from_limbs(vec![123, 456, 789]);
        let (q1, r1) = a.div_rem_limb(97);
        let (q2, r2) = a.div_rem(&Ubig::from(97u64));
        assert_eq!(q1, q2);
        assert_eq!(Ubig::from(r1), r2);
    }

    #[test]
    fn operator_sugar() {
        let a = Ubig::from(1000u64);
        let b = Ubig::from(33u64);
        assert_eq!(&a / &b, Ubig::from(30u64));
        assert_eq!(&a % &b, Ubig::from(10u64));
        assert_eq!(a.rem_of(&b), Ubig::from(10u64));
    }
}
