//! Addition and subtraction for [`Ubig`].

use std::ops::{Add, AddAssign, Sub, SubAssign};

use crate::{Limb, Ubig};

/// Adds `b` into `a` in place (`a += b`).
pub(crate) fn add_assign_limbs(a: &mut Vec<Limb>, b: &[Limb]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    let mut carry = 0u64;
    for (i, limb) in a.iter_mut().enumerate() {
        let rhs = b.get(i).copied().unwrap_or(0);
        let (s1, c1) = limb.overflowing_add(rhs);
        let (s2, c2) = s1.overflowing_add(carry);
        *limb = s2;
        carry = (c1 as u64) + (c2 as u64);
        if carry == 0 && i >= b.len() {
            break;
        }
    }
    if carry != 0 {
        a.push(carry);
    }
}

/// Subtracts `b` from `a` in place (`a -= b`); returns `true` on borrow
/// (i.e. when `b > a`), in which case `a` holds the wrapped result.
pub(crate) fn sub_assign_limbs(a: &mut Vec<Limb>, b: &[Limb]) -> bool {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    let mut borrow = 0u64;
    for (i, limb) in a.iter_mut().enumerate() {
        let rhs = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = limb.overflowing_sub(rhs);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *limb = d2;
        borrow = (b1 as u64) + (b2 as u64);
        if borrow == 0 && i >= b.len() {
            break;
        }
    }
    borrow != 0
}

impl Ubig {
    /// Subtracts `other` from `self`, returning `None` if the result would be
    /// negative.
    ///
    /// ```
    /// use bigint::Ubig;
    /// let five = Ubig::from(5u64);
    /// let three = Ubig::from(3u64);
    /// assert_eq!(five.checked_sub(&three), Some(Ubig::from(2u64)));
    /// assert_eq!(three.checked_sub(&five), None);
    /// ```
    pub fn checked_sub(&self, other: &Ubig) -> Option<Ubig> {
        if self < other {
            return None;
        }
        let mut limbs = self.limbs.clone();
        let borrow = sub_assign_limbs(&mut limbs, &other.limbs);
        debug_assert!(!borrow);
        Some(Ubig::from_limbs(limbs))
    }

    /// `|self - other|`: the absolute difference.
    ///
    /// ```
    /// use bigint::Ubig;
    /// let a = Ubig::from(3u64);
    /// let b = Ubig::from(10u64);
    /// assert_eq!(a.abs_diff(&b), Ubig::from(7u64));
    /// assert_eq!(b.abs_diff(&a), Ubig::from(7u64));
    /// ```
    pub fn abs_diff(&self, other: &Ubig) -> Ubig {
        if self >= other {
            self.checked_sub(other).expect("self >= other")
        } else {
            other.checked_sub(self).expect("other > self")
        }
    }
}

impl Add<&Ubig> for &Ubig {
    type Output = Ubig;
    fn add(self, rhs: &Ubig) -> Ubig {
        let mut limbs = self.limbs.clone();
        add_assign_limbs(&mut limbs, &rhs.limbs);
        Ubig::from_limbs(limbs)
    }
}

impl Add for Ubig {
    type Output = Ubig;
    fn add(mut self, rhs: Ubig) -> Ubig {
        add_assign_limbs(&mut self.limbs, &rhs.limbs);
        self
    }
}

impl Add<u64> for &Ubig {
    type Output = Ubig;
    fn add(self, rhs: u64) -> Ubig {
        self + &Ubig::from(rhs)
    }
}

impl AddAssign<&Ubig> for Ubig {
    fn add_assign(&mut self, rhs: &Ubig) {
        add_assign_limbs(&mut self.limbs, &rhs.limbs);
    }
}

impl Sub<&Ubig> for &Ubig {
    type Output = Ubig;
    /// # Panics
    ///
    /// Panics if `rhs > self` (unsigned subtraction underflow).
    fn sub(self, rhs: &Ubig) -> Ubig {
        self.checked_sub(rhs).expect("Ubig subtraction underflow: rhs > self")
    }
}

impl Sub for Ubig {
    type Output = Ubig;
    /// # Panics
    ///
    /// Panics if `rhs > self` (unsigned subtraction underflow).
    fn sub(self, rhs: Ubig) -> Ubig {
        (&self).sub(&rhs)
    }
}

impl Sub<u64> for &Ubig {
    type Output = Ubig;
    /// # Panics
    ///
    /// Panics if `rhs > self` (unsigned subtraction underflow).
    fn sub(self, rhs: u64) -> Ubig {
        self - &Ubig::from(rhs)
    }
}

impl SubAssign<&Ubig> for Ubig {
    /// # Panics
    ///
    /// Panics if `rhs > self` (unsigned subtraction underflow).
    fn sub_assign(&mut self, rhs: &Ubig) {
        let borrow = sub_assign_limbs(&mut self.limbs, &rhs.limbs);
        assert!(!borrow, "Ubig subtraction underflow: rhs > self");
        self.normalize();
    }
}

impl std::iter::Sum for Ubig {
    fn sum<I: Iterator<Item = Ubig>>(iter: I) -> Ubig {
        iter.fold(Ubig::zero(), |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_with_carry_chain() {
        let a = Ubig::from(u64::MAX);
        let b = Ubig::one();
        let s = &a + &b;
        assert_eq!(s.as_limbs(), &[0, 1]);
    }

    #[test]
    fn add_across_lengths() {
        let a = Ubig::from_limbs(vec![u64::MAX, u64::MAX]);
        let b = Ubig::one();
        assert_eq!((&a + &b).as_limbs(), &[0, 0, 1]);
        assert_eq!(&b + &a, &a + &b);
    }

    #[test]
    fn sub_cancels_add() {
        let a = Ubig::from_limbs(vec![123, 456]);
        let b = Ubig::from_limbs(vec![789, 12]);
        assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = Ubig::from_limbs(vec![0, 1]); // 2^64
        let b = Ubig::one();
        assert_eq!((&a - &b).as_limbs(), &[u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &Ubig::one() - &Ubig::two();
    }

    #[test]
    fn checked_sub_none_on_underflow() {
        assert_eq!(Ubig::zero().checked_sub(&Ubig::one()), None);
        assert_eq!(Ubig::one().checked_sub(&Ubig::one()), Some(Ubig::zero()));
    }

    #[test]
    fn add_assign_and_sum() {
        let mut acc = Ubig::zero();
        for i in 1..=10u64 {
            acc += &Ubig::from(i);
        }
        assert_eq!(acc, Ubig::from(55u64));
        let total: Ubig = (1..=10u64).map(Ubig::from).sum();
        assert_eq!(total, Ubig::from(55u64));
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = Ubig::from_limbs(vec![5, 9]);
        let b = Ubig::from_limbs(vec![7, 2]);
        assert_eq!(a.abs_diff(&b), b.abs_diff(&a));
        assert_eq!(a.abs_diff(&a), Ubig::zero());
    }
}
