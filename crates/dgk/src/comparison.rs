//! The DGK two-party secure comparison protocol.
//!
//! Party **B** (the *evaluator*) holds a private `ℓ`-bit integer `b` and
//! the DGK private key. Party **A** (the *blinder*) holds a private
//! `ℓ`-bit integer `a`. The protocol decides `a > b`:
//!
//! 1. **Round 1 (B → A):** B sends bitwise encryptions `E(b_i)` for
//!    `i = 0..ℓ`.
//! 2. **Round 2 (A → B):** for each bit position `i`, A homomorphically
//!    forms `c_i = E(a_i − b_i − 1 + 3·Σ_{j>i} (a_j ⊕ b_j))`. The value
//!    `c_i` is zero iff `a_i = 1, b_i = 0` and all higher bits agree —
//!    i.e. iff position `i` witnesses `a > b`. A blinds each `c_i` by a
//!    random exponent in `[1, u)` (zero stays zero, non-zero stays
//!    non-zero and uniform), rerandomizes, shuffles, and returns the list.
//! 3. **Finish (B):** B zero-tests every entry; some entry is zero iff
//!    `a > b`. In the consensus protocol the result bit is then shared
//!    with A (both servers are allowed to learn comparison outcomes).
//!
//! The round functions here are transport-agnostic (pure data in, message
//! out), so the `smc` crate can run them over real channels while tests
//! use the in-memory driver [`compare_gt_plain`].

use bigint::montgomery::PowScratch;
use bigint::{random, Ubig};
use parallel::Parallelism;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::DgkError;
use crate::keys::{DgkCiphertext, DgkKeypair, DgkPrivateKey, DgkPublicKey};

/// Round-1 message: the evaluator's encrypted bits, least significant
/// first.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvaluatorBits {
    /// `E(b_0), …, E(b_{ℓ−1})`.
    pub encrypted_bits: Vec<DgkCiphertext>,
}

/// Round-2 message: the blinder's blinded, shuffled per-position
/// witnesses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlindedWitnesses {
    /// Blinded `E(r_i · c_i)` in random order.
    pub witnesses: Vec<DgkCiphertext>,
}

/// Rough wall-clock model (ns) for one protocol-step item costing
/// `exp_bits` Montgomery multiplications over `Z_n`, used to hint
/// [`Parallelism`] splitting at the round call sites. The hint only
/// affects chunking; outputs stay bit-identical.
fn step_cost_ns(pk: &DgkPublicKey, exp_bits: u64) -> u64 {
    let k = pk.modulus().bits().div_ceil(64).max(1);
    exp_bits.max(1) * (k * k).max(4) * 5
}

/// Validates that `v` fits the protocol's `ℓ`-bit input domain.
fn check_width(v: u64, pk: &DgkPublicKey) -> Result<(), DgkError> {
    let max_bits = pk.compare_bits();
    let value_bits = 64 - v.leading_zeros() as u64;
    if value_bits > max_bits as u64 {
        return Err(DgkError::InputTooWide { value_bits, max_bits });
    }
    Ok(())
}

/// **Round 1** — run by the evaluator B: encrypt the bits of `b`.
///
/// # Errors
///
/// Returns [`DgkError::InputTooWide`] if `b` does not fit `ℓ` bits.
pub fn evaluator_encrypt_bits<R: Rng + ?Sized>(
    b: u64,
    pk: &DgkPublicKey,
    rng: &mut R,
) -> Result<EvaluatorBits, DgkError> {
    evaluator_encrypt_bits_par(b, pk, &Parallelism::sequential(), rng)
}

/// [`evaluator_encrypt_bits`] with the `ℓ` bit encryptions fanned out
/// according to `par`. Each bit draws its randomness from its own
/// seed-derived stream, so the message is bit-identical for every thread
/// count.
///
/// # Errors
///
/// Returns [`DgkError::InputTooWide`] if `b` does not fit `ℓ` bits.
pub fn evaluator_encrypt_bits_par<R: Rng + ?Sized>(
    b: u64,
    pk: &DgkPublicKey,
    par: &Parallelism,
    rng: &mut R,
) -> Result<EvaluatorBits, DgkError> {
    check_width(b, pk)?;
    // One bit encryption = a fixed-base double exponentiation of
    // ~(|u| + blind_bits)/4 multiplies (all squarings precomputed).
    let par = par
        .with_item_cost_ns(step_cost_ns(pk, (pk.plaintext_space().bits() + pk.blind_bits()) / 4));
    let encrypted_bits = par.map_n_seeded(pk.compare_bits() as usize, rng, |i, item_rng| {
        pk.encrypt_bit((b >> i) & 1 == 1, item_rng)
    });
    Ok(EvaluatorBits { encrypted_bits })
}

/// **Round 2** — run by the blinder A: form, blind and shuffle the
/// per-position witnesses for `a > b`.
///
/// # Errors
///
/// Returns [`DgkError::InputTooWide`] if `a` does not fit `ℓ` bits, or
/// [`DgkError::MalformedCiphertext`] if the round-1 message has the wrong
/// arity.
pub fn blinder_build_witnesses<R: Rng + ?Sized>(
    a: u64,
    round1: &EvaluatorBits,
    pk: &DgkPublicKey,
    rng: &mut R,
) -> Result<BlindedWitnesses, DgkError> {
    blinder_build_witnesses_par(a, round1, pk, &Parallelism::sequential(), rng)
}

/// [`blinder_build_witnesses`] with the expensive per-position work
/// fanned out according to `par`.
///
/// The round splits into three stages:
/// 1. `xor_enc[j] = E(a_j ⊕ b_j)` — RNG-free, parallel.
/// 2. The suffix sums `E(Σ_{j>i} a_j ⊕ b_j)` — a chain of single modular
///    multiplications where each entry extends the previous, so it stays
///    sequential (parallelizing it would redo the prefix work per item).
/// 3. The per-position witness pipeline — the dominant cost, parallel,
///    each position on its own seed-derived RNG stream. The whole
///    algebraic chain `((E(b_i)^{u−1} · g^{a_i−1} · S^3))^r · h^{r'}`
///    folds into **one** interleaved multi-exponentiation
///    ([`bigint::montgomery::MontgomeryContext::modpow_multi`]) over the
///    bases `E(b_i)`, `g`, `S` with the blinding exponent `r`
///    pre-multiplied in, followed by a fixed-base `h^{r'}` lookup — one
///    shared squaring chain instead of three independent modpows.
///    `g`'s order is `u·v_p·v_q`, not `u`, so the folded exponent
///    `(a_i−1 mod u)·r` stays unreduced; the result is the same group
///    element the step-by-step pipeline produces, bit for bit.
///
/// The final Fisher–Yates shuffle consumes the caller's RNG in index
/// order and stays sequential. Output is bit-identical for every thread
/// count.
///
/// # Errors
///
/// Returns [`DgkError::InputTooWide`] if `a` does not fit `ℓ` bits, or
/// [`DgkError::MalformedCiphertext`] if the round-1 message has the wrong
/// arity.
pub fn blinder_build_witnesses_par<R: Rng + ?Sized>(
    a: u64,
    round1: &EvaluatorBits,
    pk: &DgkPublicKey,
    par: &Parallelism,
    rng: &mut R,
) -> Result<BlindedWitnesses, DgkError> {
    check_width(a, pk)?;
    let ell = pk.compare_bits() as usize;
    if round1.encrypted_bits.len() != ell {
        return Err(DgkError::MalformedCiphertext);
    }
    let u = pk.plaintext_space().clone();
    let u_minus_1 = &u - &Ubig::one();
    let three = Ubig::from(3u64);

    // xor_enc[j] = E(a_j ⊕ b_j): equals E(b_j) when a_j = 0, and
    // E(1 − b_j) = g · E(b_j)^{u−1} when a_j = 1 (one |u|-bit modpow).
    let xor_par = par.with_item_cost_ns(step_cost_ns(pk, 2 * pk.plaintext_space().bits()));
    let xor_enc: Vec<DgkCiphertext> = xor_par.map(&round1.encrypted_bits, |j, e_bj| {
        if (a >> j) & 1 == 0 {
            e_bj.clone()
        } else {
            pk.add_plain(&pk.neg(e_bj), &Ubig::one())
        }
    });

    // suffixes[i] = E(Σ_{j>i} a_j ⊕ b_j), with None encoding the empty
    // sum at the top position. Built top-down; each entry is one modular
    // multiplication on top of the previous.
    let mut suffixes: Vec<Option<DgkCiphertext>> = vec![None; ell];
    for i in (0..ell.saturating_sub(1)).rev() {
        suffixes[i] = Some(match &suffixes[i + 1] {
            None => xor_enc[i + 1].clone(),
            Some(s) => pk.add(s, &xor_enc[i + 1]),
        });
    }

    // Per-position witnesses, kept in the top-down order the sequential
    // loop produced: c_i = g^{a_i − 1} · E(b_i)^{u−1} · E(Σ_{j>i} w_j)^3,
    // blinded by a random unit of Z_u and rerandomized. With the blinding
    // exponent r folded in, each witness is one 3-way multi-exponentiation
    // with ~2|u|-bit exponents plus a fixed-base h^{r'} lookup.
    let ctx = pk.ctx_n();
    let order: Vec<usize> = (0..ell).rev().collect();
    let witness_par = par
        .with_item_cost_ns(step_cost_ns(pk, 4 * pk.plaintext_space().bits() + pk.blind_bits() / 4));
    let mut witnesses = witness_par.map_seeded(&order, rng, |_, &i, item_rng| {
        let a_i = (a >> i) & 1;
        // Plain part: a_i − 1 ∈ {−1, 0}, encoded mod u.
        let plain = if a_i == 1 { Ubig::zero() } else { u_minus_1.clone() };
        if let Some(ctx) = ctx {
            let r = random::gen_range(item_rng, &Ubig::one(), &u);
            // Exponents folded by r. The g exponent must stay unreduced:
            // g's order is u·v_p·v_q, so reducing plain·r mod u would
            // change the group element.
            let e_bit = &u_minus_1 * &r;
            let e_plain = &plain * &r;
            let e_suffix = &three * &r;
            let mut pairs: Vec<(&Ubig, &Ubig)> =
                vec![(round1.encrypted_bits[i].as_raw(), &e_bit), (pk.generator_g(), &e_plain)];
            if let Some(suffix) = &suffixes[i] {
                pairs.push((suffix.as_raw(), &e_suffix));
            }
            let blinded = DgkCiphertext::from_raw(ctx.modpow_multi(&pairs));
            pk.rerandomize(&blinded, item_rng)
        } else {
            // No Montgomery context (even modulus — never a real DGK key):
            // fall back to the step-by-step pipeline.
            let mut c = pk.mul_plain(&round1.encrypted_bits[i], &u_minus_1);
            c = pk.add_plain(&c, &plain);
            if let Some(suffix) = &suffixes[i] {
                c = pk.add(&c, &pk.mul_plain(suffix, &three));
            }
            let r = random::gen_range(item_rng, &Ubig::one(), &u);
            c = pk.mul_plain(&c, &r);
            pk.rerandomize(&c, item_rng)
        }
    });

    // Fisher–Yates shuffle so B cannot tell which position witnessed.
    // Swap-order-dependent, so it stays on the caller's RNG.
    for i in (1..witnesses.len()).rev() {
        let j = rng.gen_range(0..=i);
        witnesses.swap(i, j);
    }
    Ok(BlindedWitnesses { witnesses })
}

/// **Finish** — run by the evaluator B: `a > b` iff some witness is zero.
///
/// # Errors
///
/// Propagates [`DgkError::MalformedCiphertext`] from the zero test.
pub fn evaluator_decide(round2: &BlindedWitnesses, sk: &DgkPrivateKey) -> Result<bool, DgkError> {
    let mut ws = PowScratch::new();
    for w in &round2.witnesses {
        if sk.is_zero_scratch(w, &mut ws)? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// [`evaluator_decide`] with the zero tests fanned out according to
/// `par`.
///
/// The sequential path early-exits on the first zero; the parallel path
/// splits the witnesses into contiguous per-worker chunks (each chunk
/// reusing one exponentiation scratch, as
/// [`DgkPrivateKey::is_zero_batch`] does), then scans the per-item
/// results in index order — so a zero at index `i` shadows any malformed
/// ciphertext at index `> i` exactly as the sequential loop would. (This
/// is why it cannot delegate to [`DgkPrivateKey::is_zero_batch_par`],
/// which always surfaces the lowest-index error.)
///
/// # Errors
///
/// Propagates [`DgkError::MalformedCiphertext`] from the zero test.
pub fn evaluator_decide_par(
    round2: &BlindedWitnesses,
    sk: &DgkPrivateKey,
    par: &Parallelism,
) -> Result<bool, DgkError> {
    let par = par.with_item_cost_ns(sk.zero_test_cost_ns());
    let workers = par.workers_for(round2.witnesses.len());
    if workers <= 1 {
        return evaluator_decide(round2, sk);
    }
    let chunk = round2.witnesses.len().div_ceil(workers);
    let chunks: Vec<&[DgkCiphertext]> = round2.witnesses.chunks(chunk).collect();
    let per_chunk: Vec<Vec<Result<bool, DgkError>>> = par.map(&chunks, |_, slice| {
        let mut ws = PowScratch::new();
        slice.iter().map(|w| sk.is_zero_scratch(w, &mut ws)).collect()
    });
    for test in per_chunk.into_iter().flatten() {
        if test? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// In-memory reference driver: runs all three steps locally. The
/// transport-layer version (two threads, real channels, byte accounting)
/// lives in the `smc` crate.
///
/// Returns `a > b`.
///
/// ```
/// use dgk::{comparison, DgkKeypair, DgkParams};
/// let mut rng = rand::thread_rng();
/// let keys = DgkKeypair::generate(&mut rng, &DgkParams::insecure_test());
/// assert!(comparison::compare_gt_plain(9, 4, &keys, &mut rng)?);
/// assert!(!comparison::compare_gt_plain(4, 9, &keys, &mut rng)?);
/// assert!(!comparison::compare_gt_plain(7, 7, &keys, &mut rng)?);
/// # Ok::<(), dgk::DgkError>(())
/// ```
///
/// # Errors
///
/// Propagates width and ciphertext errors from the individual rounds.
pub fn compare_gt_plain<R: Rng + ?Sized>(
    a: u64,
    b: u64,
    keys: &DgkKeypair,
    rng: &mut R,
) -> Result<bool, DgkError> {
    let round1 = evaluator_encrypt_bits(b, keys.public_key(), rng)?;
    let round2 = blinder_build_witnesses(a, &round1, keys.public_key(), rng)?;
    evaluator_decide(&round2, keys.private_key())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::DgkParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn keys() -> &'static DgkKeypair {
        static KEYS: OnceLock<DgkKeypair> = OnceLock::new();
        KEYS.get_or_init(|| {
            DgkKeypair::generate(&mut StdRng::seed_from_u64(21), &DgkParams::insecure_test())
        })
    }

    #[test]
    fn exhaustive_small_pairs() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(1);
        for a in 0..12u64 {
            for b in 0..12u64 {
                let got = compare_gt_plain(a, b, kp, &mut rng).unwrap();
                assert_eq!(got, a > b, "compare {a} > {b}");
            }
        }
    }

    #[test]
    fn boundary_values() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(2);
        let max = (1u64 << kp.public_key().compare_bits()) - 1;
        assert!(compare_gt_plain(max, 0, kp, &mut rng).unwrap());
        assert!(compare_gt_plain(max, max - 1, kp, &mut rng).unwrap());
        assert!(!compare_gt_plain(max, max, kp, &mut rng).unwrap());
        assert!(!compare_gt_plain(0, max, kp, &mut rng).unwrap());
        assert!(!compare_gt_plain(0, 0, kp, &mut rng).unwrap());
    }

    #[test]
    fn adjacent_values() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(3);
        for v in [0u64, 1, 100, 1000, 30000] {
            assert!(compare_gt_plain(v + 1, v, kp, &mut rng).unwrap());
            assert!(!compare_gt_plain(v, v + 1, kp, &mut rng).unwrap());
        }
    }

    #[test]
    fn too_wide_inputs_rejected() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(4);
        let over = 1u64 << kp.public_key().compare_bits();
        assert!(matches!(
            compare_gt_plain(over, 0, kp, &mut rng),
            Err(DgkError::InputTooWide { .. })
        ));
        assert!(matches!(
            evaluator_encrypt_bits(over, kp.public_key(), &mut rng),
            Err(DgkError::InputTooWide { .. })
        ));
    }

    #[test]
    fn wrong_arity_round1_rejected() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(5);
        let short =
            EvaluatorBits { encrypted_bits: vec![kp.public_key().encrypt_bit(true, &mut rng)] };
        assert_eq!(
            blinder_build_witnesses(3, &short, kp.public_key(), &mut rng),
            Err(DgkError::MalformedCiphertext)
        );
    }

    #[test]
    fn at_most_one_zero_witness() {
        // Structural sanity: for any pair there is at most one witnessing
        // position, so at most one zero among the blinded list.
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(6);
        for (a, b) in [(9u64, 4u64), (255, 254), (37, 21)] {
            let r1 = evaluator_encrypt_bits(b, kp.public_key(), &mut rng).unwrap();
            let r2 = blinder_build_witnesses(a, &r1, kp.public_key(), &mut rng).unwrap();
            let zeros =
                r2.witnesses.iter().filter(|w| kp.private_key().is_zero(w).unwrap()).count();
            assert_eq!(zeros, 1, "exactly one witness expected for {a} > {b}");
        }
    }

    #[test]
    fn witness_count_matches_width() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(7);
        let r1 = evaluator_encrypt_bits(5, kp.public_key(), &mut rng).unwrap();
        let r2 = blinder_build_witnesses(3, &r1, kp.public_key(), &mut rng).unwrap();
        assert_eq!(r2.witnesses.len(), kp.public_key().compare_bits() as usize);
    }

    #[test]
    fn parallel_round_messages_are_thread_count_invariant() {
        let kp = keys();
        for (a, b) in [(9u64, 4u64), (0, 0), (255, 254)] {
            let runs: Vec<(EvaluatorBits, BlindedWitnesses, bool)> = [1usize, 4]
                .into_iter()
                .map(|threads| {
                    let par = Parallelism::new(threads).with_min_batch(1);
                    let mut rng = StdRng::seed_from_u64(40);
                    let r1 =
                        evaluator_encrypt_bits_par(b, kp.public_key(), &par, &mut rng).unwrap();
                    let r2 = blinder_build_witnesses_par(a, &r1, kp.public_key(), &par, &mut rng)
                        .unwrap();
                    let gt = evaluator_decide_par(&r2, kp.private_key(), &par).unwrap();
                    (r1, r2, gt)
                })
                .collect();
            assert_eq!(runs[0], runs[1], "{a} vs {b}");
            assert_eq!(runs[0].2, a > b);
        }
    }

    #[test]
    fn random_pairs_match_plain_comparison() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(8);
        let max = 1u64 << kp.public_key().compare_bits();
        for _ in 0..30 {
            let a = rng.gen_range(0..max);
            let b = rng.gen_range(0..max);
            assert_eq!(compare_gt_plain(a, b, kp, &mut rng).unwrap(), a > b, "{a} vs {b}");
        }
    }
}
