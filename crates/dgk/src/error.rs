//! Error type for DGK operations.

use std::error::Error;
use std::fmt;

/// Errors returned by DGK key generation, encryption and comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DgkError {
    /// The plaintext is outside `Z_u`.
    MessageOutOfRange,
    /// A value passed to the comparison protocol exceeds its `ℓ`-bit input
    /// domain.
    InputTooWide {
        /// The offending value's bit length.
        value_bits: u64,
        /// The protocol's configured input width.
        max_bits: u32,
    },
    /// The ciphertext is not an element of `Z_n`.
    MalformedCiphertext,
    /// Decryption lookup failed (table decryption only covers `Z_u`).
    DecryptionFailed,
}

impl fmt::Display for DgkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DgkError::MessageOutOfRange => write!(f, "plaintext not in Z_u"),
            DgkError::InputTooWide { value_bits, max_bits } => write!(
                f,
                "comparison input has {value_bits} bits but the protocol is configured for {max_bits}"
            ),
            DgkError::MalformedCiphertext => write!(f, "ciphertext not in Z_n"),
            DgkError::DecryptionFailed => write!(f, "plaintext not found in decryption table"),
        }
    }
}

impl Error for DgkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DgkError::InputTooWide { value_bits: 70, max_bits: 40 };
        assert!(e.to_string().contains("70"));
        assert!(e.to_string().contains("40"));
    }
}
