//! The DGK (Damgård–Geisler–Krøigaard) cryptosystem and the two-party
//! secure comparison protocol built on it.
//!
//! DGK is a homomorphic encryption scheme with a deliberately *small*
//! plaintext space `Z_u` (`u` a small prime), which makes its signature
//! operation — testing whether a ciphertext encrypts zero — cheap for the
//! private-key holder. That zero test is exactly what the bitwise secure
//! comparison protocol of Damgård, Geisler and Krøigaard ("Efficient and
//! Secure Comparison for On-Line Auctions", ACISP 2007, with the 2009
//! correction) needs: party A holds a private `ℓ`-bit integer `a`, party B
//! holds `b` and the DGK private key, and at the end both learn the single
//! bit `a > b` and nothing else.
//!
//! The private consensus protocol (paper §IV) invokes this comparison in
//! three places: the pairwise vote-ranking (step 4), the noisy threshold
//! check (step 5), and the noisy re-ranking (step 8).
//!
//! # Examples
//!
//! ```
//! use dgk::{DgkKeypair, DgkParams, comparison};
//!
//! let mut rng = rand::thread_rng();
//! let params = DgkParams::insecure_test(); // small, fast parameters
//! let keys = DgkKeypair::generate(&mut rng, &params);
//!
//! // In-memory reference run of the comparison (the transport-layer
//! // version lives in the `smc` crate).
//! let gt = comparison::compare_gt_plain(57, 31, &keys, &mut rng).unwrap();
//! assert!(gt);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comparison;
mod error;
mod keys;

pub use error::DgkError;
pub use keys::{DgkCiphertext, DgkKeypair, DgkParams, DgkPrivateKey, DgkPublicKey};
