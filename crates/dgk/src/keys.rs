//! DGK key generation, encryption, decryption and the zero test.
//!
//! Key structure (following DGK 2007/2009):
//!
//! * `u` — a small prime bounding the plaintext space `Z_u`;
//! * `v_p`, `v_q` — secret `t`-bit primes;
//! * `p`, `q` — primes with `u·v_p | p−1` and `u·v_q | q−1`; `n = p·q`;
//! * `g` — an element of `Z_n^*` of order `u·v_p·v_q`;
//! * `h` — an element of `Z_n^*` of order `v_p·v_q`.
//!
//! Encryption: `E(m) = g^m · h^r mod n` for random `r`. The private-key
//! holder tests `m = 0` by checking `E(m)^{v_p} ≡ 1 (mod p)`, because
//! raising to `v_p` kills the `h` component mod `p` and leaves
//! `(g^{v_p})^m`, which is 1 iff `u | m`. Full decryption walks a small
//! lookup table of `(g^{v_p})^m mod p` for `m ∈ Z_u`.

use std::collections::HashMap;

use bigint::modular::{crt_pair, modmul, modpow};
use bigint::montgomery::{
    CachedContext, CachedFixedBase, FixedBaseTable, MontgomeryContext, PowScratch,
};
use bigint::prime::{gen_prime, gen_prime_with_divisor, next_prime};
use bigint::{random, Ubig};
use parallel::Parallelism;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::DgkError;

/// Size parameters for DGK key generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DgkParams {
    /// Bits of the RSA-like modulus `n`.
    pub modulus_bits: u64,
    /// Bits of the secret subgroup primes `v_p`, `v_q`.
    pub subgroup_bits: u64,
    /// Input bit width `ℓ` of the comparison protocol; determines the
    /// plaintext prime `u > 3ℓ + 5`.
    pub compare_bits: u32,
}

impl DgkParams {
    /// Parameters matching the paper's prototype scale: a small modulus
    /// in line with its 64-bit Paillier keys. **Not cryptographically
    /// strong** — reproduction scale, like the paper's.
    pub fn paper() -> Self {
        DgkParams { modulus_bits: 256, subgroup_bits: 40, compare_bits: 40 }
    }

    /// Tiny parameters for fast unit tests. Insecure by construction.
    /// `compare_bits` matches `smc::ShareDomain::test()`.
    pub fn insecure_test() -> Self {
        DgkParams { modulus_bits: 128, subgroup_bits: 24, compare_bits: 26 }
    }

    /// The plaintext-space prime `u`: smallest prime exceeding `3ℓ + 5`,
    /// large enough that every value the comparison protocol encrypts
    /// (`a_i − b_i − 1 + 3·Σ w_j ∈ [−2, 3ℓ+1]`) is distinguishable mod `u`.
    pub fn plaintext_prime<R: Rng + ?Sized>(&self, rng: &mut R) -> Ubig {
        next_prime(&Ubig::from(3 * self.compare_bits as u64 + 6), rng)
    }
}

impl Default for DgkParams {
    fn default() -> Self {
        DgkParams::paper()
    }
}

/// DGK public key.
///
/// The key embeds lazily built exponentiation caches: a Montgomery
/// context for `n` plus fixed-base window tables for the generators `g`
/// and `h`, which never change over the key's lifetime. Encryption then
/// collapses to two table lookups and one Montgomery multiplication
/// (`g^m · h^r` with all squarings precomputed) — the multi-x win the
/// comparison-heavy protocol steps (Alg. 2, SVT) ride on. The caches are
/// skipped by serde and ignored by equality; call
/// [`DgkPublicKey::precompute`] to build them eagerly:
///
/// ```
/// use dgk::{DgkKeypair, DgkParams};
/// let keys = DgkKeypair::generate(&mut rand::thread_rng(), &DgkParams::insecure_test());
/// let pk = keys.public_key();
/// pk.precompute(); // warm the n-context and g/h tables (optional)
/// let c = pk.encrypt_u64(3, &mut rand::thread_rng());
/// assert_eq!(keys.private_key().decrypt(&c).unwrap(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DgkPublicKey {
    n: Ubig,
    g: Ubig,
    h: Ubig,
    u: Ubig,
    /// Blinding exponent bit length for `h^r` (2.5·t in DGK; we use 2t+16).
    blind_bits: u64,
    /// Comparison input width carried with the key so both parties agree.
    compare_bits: u32,
    /// Montgomery context for `Z_n`, built once per key on first use.
    #[serde(skip)]
    ctx_n: CachedContext,
    /// Fixed-base table for `g` (exponents `< u`, i.e. `u.bits()` wide).
    #[serde(skip)]
    table_g: CachedFixedBase,
    /// Fixed-base table for `h` (exponents `blind_bits` wide).
    #[serde(skip)]
    table_h: CachedFixedBase,
}

/// DGK private key: the factors, subgroup primes and decryption table.
#[derive(Debug, Clone)]
pub struct DgkPrivateKey {
    public: DgkPublicKey,
    p: Ubig,
    v_p: Ubig,
    /// `g^{v_p} mod p`, the generator of the order-`u` subgroup used by
    /// table decryption.
    g_vp: Ubig,
    /// Lookup table `(g^{v_p})^m mod p → m` for all `m ∈ Z_u`.
    table: HashMap<Ubig, u64>,
    /// Montgomery context for `Z_p` — the zero test `c^{v_p} mod p` is
    /// DGK's signature operation and runs entirely under this context.
    ctx_p: CachedContext,
}

/// A DGK public/private keypair.
#[derive(Debug, Clone)]
pub struct DgkKeypair {
    public: DgkPublicKey,
    private: DgkPrivateKey,
}

/// A DGK ciphertext: an element of `Z_n^*`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DgkCiphertext(Ubig);

impl DgkCiphertext {
    /// Wraps a raw group element.
    pub fn from_raw(value: Ubig) -> Self {
        DgkCiphertext(value)
    }

    /// Borrow the raw group element.
    pub fn as_raw(&self) -> &Ubig {
        &self.0
    }

    /// Serialized size in bytes, for communication accounting.
    pub fn byte_len(&self) -> usize {
        self.0.to_le_bytes().len()
    }
}

/// Finds an element of order exactly `target_order` in `Z_p^*`, where
/// `target_order | p−1` and `order_prime_factors` are the distinct primes
/// dividing `target_order`. All trial exponentiations share the caller's
/// Montgomery context for `p` instead of rebuilding one per candidate.
fn find_element_of_order<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &MontgomeryContext,
    target_order: &Ubig,
    order_prime_factors: &[&Ubig],
) -> Ubig {
    let p_minus_1 = ctx.modulus() - &Ubig::one();
    let cofactor = &p_minus_1 / target_order;
    loop {
        let r = random::gen_range(rng, &Ubig::two(), &p_minus_1);
        let candidate = ctx.modpow(&r, &cofactor);
        if candidate.is_one() {
            continue;
        }
        // candidate has order dividing target_order; verify it is exact by
        // checking no proper divisor (target_order / f) is an order.
        let exact = order_prime_factors
            .iter()
            .all(|f| !ctx.modpow(&candidate, &(target_order / *f)).is_one());
        if exact {
            return candidate;
        }
    }
}

impl DgkKeypair {
    /// Generates a DGK keypair.
    ///
    /// ```
    /// use dgk::{DgkKeypair, DgkParams};
    /// let keys = DgkKeypair::generate(&mut rand::thread_rng(), &DgkParams::insecure_test());
    /// assert!(keys.public_key().modulus().bits() > 100);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (modulus too small to fit
    /// the subgroup structure).
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, params: &DgkParams) -> DgkKeypair {
        let u = params.plaintext_prime(rng);
        let t = params.subgroup_bits;
        let half = params.modulus_bits / 2;
        assert!(
            half > t + u.bits() + 2,
            "modulus_bits too small for subgroup_bits + plaintext prime"
        );

        let (p, v_p) = loop {
            let v_p = gen_prime(rng, t);
            if v_p == u {
                continue;
            }
            let p = gen_prime_with_divisor(rng, half, &(&u * &v_p));
            break (p, v_p);
        };
        let (q, v_q) = loop {
            let v_q = gen_prime(rng, t);
            if v_q == v_p || v_q == u {
                continue;
            }
            let q = gen_prime_with_divisor(rng, half, &(&u * &v_q));
            if q == p {
                continue;
            }
            break (q, v_q);
        };
        let n = &p * &q;

        // One Montgomery context per prime serves every keygen
        // exponentiation below (generator search, g_vp, table build).
        let ctx_p = MontgomeryContext::new(&p).expect("p is an odd prime");
        let ctx_q = MontgomeryContext::new(&q).expect("q is an odd prime");

        // g: order u*v_p mod p and u*v_q mod q → order u*v_p*v_q mod n.
        let g_p = find_element_of_order(rng, &ctx_p, &(&u * &v_p), &[&u, &v_p]);
        let g_q = find_element_of_order(rng, &ctx_q, &(&u * &v_q), &[&u, &v_q]);
        let g = crt_pair(&g_p, &p, &g_q, &q).expect("p, q distinct primes");

        // h: order v_p mod p and v_q mod q → order v_p*v_q mod n.
        let h_p = find_element_of_order(rng, &ctx_p, &v_p, &[&v_p]);
        let h_q = find_element_of_order(rng, &ctx_q, &v_q, &[&v_q]);
        let h = crt_pair(&h_p, &p, &h_q, &q).expect("p, q distinct primes");

        let public = DgkPublicKey {
            n,
            g,
            h,
            u: u.clone(),
            blind_bits: 2 * t + 16,
            compare_bits: params.compare_bits,
            ctx_n: CachedContext::new(),
            table_g: CachedFixedBase::new(),
            table_h: CachedFixedBase::new(),
        };

        // Decryption table over the order-u subgroup generated by g^{v_p}.
        let g_vp = ctx_p.modpow(&public.g, &v_p);
        let u64_u = u.to_u64().expect("u is small");
        let mut table = HashMap::with_capacity(u64_u as usize);
        let mut acc = Ubig::one();
        for m in 0..u64_u {
            table.insert(acc.clone(), m);
            acc = modmul(&acc, &g_vp, &p);
        }

        let private = DgkPrivateKey {
            public: public.clone(),
            p,
            v_p,
            g_vp,
            table,
            ctx_p: CachedContext::new(),
        };
        DgkKeypair { public, private }
    }

    /// Borrow the public key.
    pub fn public_key(&self) -> &DgkPublicKey {
        &self.public
    }

    /// Borrow the private key.
    pub fn private_key(&self) -> &DgkPrivateKey {
        &self.private
    }

    /// Consumes the keypair into `(public, private)` halves.
    pub fn split(self) -> (DgkPublicKey, DgkPrivateKey) {
        (self.public, self.private)
    }
}

impl DgkPublicKey {
    /// The modulus `n`.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// The plaintext-space prime `u`.
    pub fn plaintext_space(&self) -> &Ubig {
        &self.u
    }

    /// The message generator `g` (order `u·v_p·v_q`).
    pub fn generator_g(&self) -> &Ubig {
        &self.g
    }

    /// The blinding generator `h` (order `v_p·v_q`).
    pub fn generator_h(&self) -> &Ubig {
        &self.h
    }

    /// The bit length of the blinding exponent `r` in `h^r`.
    pub fn blind_bits(&self) -> u64 {
        self.blind_bits
    }

    /// The comparison input width `ℓ` the key was generated for.
    pub fn compare_bits(&self) -> u32 {
        self.compare_bits
    }

    /// Eagerly builds the key's exponentiation caches: the Montgomery
    /// context for `n` and the fixed-base window tables for `g` and `h`.
    /// Idempotent; without it the caches are built on first use.
    pub fn precompute(&self) {
        if let Some(ctx) = self.ctx_n.context(&self.n) {
            let _ = self.table_g.table(ctx, &self.g, self.u.bits());
            let _ = self.table_h.table(ctx, &self.h, self.blind_bits);
        }
    }

    /// `base^exp mod n` through the per-key cached Montgomery context.
    pub(crate) fn pow_mod_n(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        self.ctx_n.modpow(base, exp, &self.n)
    }

    /// The cached `Z_n` Montgomery context, for batch kernels
    /// (`modpow_multi`) that need more than one exponentiation per call.
    pub(crate) fn ctx_n(&self) -> Option<&std::sync::Arc<MontgomeryContext>> {
        self.ctx_n.context(&self.n)
    }

    /// The fixed-base table for `g` (exponents live in `Z_u`).
    pub(crate) fn g_table(&self) -> Option<&std::sync::Arc<FixedBaseTable>> {
        self.ctx_n.context(&self.n).map(|ctx| self.table_g.table(ctx, &self.g, self.u.bits()))
    }

    /// The fixed-base table for `h` (exponents are `blind_bits` wide).
    pub(crate) fn h_table(&self) -> Option<&std::sync::Arc<FixedBaseTable>> {
        self.ctx_n.context(&self.n).map(|ctx| self.table_h.table(ctx, &self.h, self.blind_bits))
    }

    /// Encrypts `m ∈ Z_u`: `E(m) = g^m · h^r mod n`.
    ///
    /// # Errors
    ///
    /// Returns [`DgkError::MessageOutOfRange`] if `m >= u`.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        m: &Ubig,
        rng: &mut R,
    ) -> Result<DgkCiphertext, DgkError> {
        if m >= &self.u {
            return Err(DgkError::MessageOutOfRange);
        }
        let r = random::gen_bits(rng, self.blind_bits);
        // One fixed-base double exponentiation: both window tables are
        // precomputed, so this costs ~(|m| + |r|)/4 Montgomery
        // multiplications and zero squarings.
        let raw = match (self.g_table(), self.h_table()) {
            (Some(tg), Some(th)) => tg.pow_mul(m, th, &r),
            _ => modmul(&modpow(&self.g, m, &self.n), &modpow(&self.h, &r, &self.n), &self.n),
        };
        Ok(DgkCiphertext(raw))
    }

    /// Encrypts a `u64` plaintext (reduced check against `u`).
    ///
    /// # Panics
    ///
    /// Panics if `m >= u`.
    pub fn encrypt_u64<R: Rng + ?Sized>(&self, m: u64, rng: &mut R) -> DgkCiphertext {
        self.encrypt(&Ubig::from(m), rng).expect("message exceeds u")
    }

    /// Encrypts a single bit.
    pub fn encrypt_bit<R: Rng + ?Sized>(&self, bit: bool, rng: &mut R) -> DgkCiphertext {
        self.encrypt_u64(bit as u64, rng)
    }

    /// Homomorphic addition: `E(m1 + m2 mod u) = E(m1)·E(m2) mod n`.
    pub fn add(&self, c1: &DgkCiphertext, c2: &DgkCiphertext) -> DgkCiphertext {
        DgkCiphertext(modmul(&c1.0, &c2.0, &self.n))
    }

    /// Homomorphic plaintext addition: multiplies by `g^k` (a fixed-base
    /// table lookup).
    pub fn add_plain(&self, c: &DgkCiphertext, k: &Ubig) -> DgkCiphertext {
        let k = k % &self.u;
        let g_k = match self.g_table() {
            Some(tg) => tg.pow(&k),
            None => modpow(&self.g, &k, &self.n),
        };
        DgkCiphertext(modmul(&c.0, &g_k, &self.n))
    }

    /// Homomorphic scalar multiplication: `E(a·m mod u) = E(m)^a mod n`
    /// under the key's cached Montgomery context.
    pub fn mul_plain(&self, c: &DgkCiphertext, a: &Ubig) -> DgkCiphertext {
        DgkCiphertext(self.pow_mod_n(&c.0, a))
    }

    /// Homomorphic negation: `E(−m mod u) = E(m)^{u−1}`.
    pub fn neg(&self, c: &DgkCiphertext) -> DgkCiphertext {
        self.mul_plain(c, &(&self.u - &Ubig::one()))
    }

    /// Rerandomizes a ciphertext by multiplying with a fresh `h^r` (a
    /// fixed-base table lookup).
    pub fn rerandomize<R: Rng + ?Sized>(&self, c: &DgkCiphertext, rng: &mut R) -> DgkCiphertext {
        let r = random::gen_bits(rng, self.blind_bits);
        let h_r = match self.h_table() {
            Some(th) => th.pow(&r),
            None => modpow(&self.h, &r, &self.n),
        };
        DgkCiphertext(modmul(&c.0, &h_r, &self.n))
    }
}

impl DgkPrivateKey {
    /// Borrow the matching public key.
    pub fn public_key(&self) -> &DgkPublicKey {
        &self.public
    }

    /// Eagerly builds the decryption-side caches: the public key's
    /// context/tables plus the `Z_p` context the zero test runs under.
    pub fn precompute(&self) {
        self.public.precompute();
        let _ = self.ctx_p.context(&self.p);
    }

    /// The zero test: whether the ciphertext encrypts `0`, decided by
    /// `c^{v_p} mod p == 1` under the key's cached `Z_p` context. This is
    /// DGK's cheap signature operation.
    ///
    /// # Errors
    ///
    /// Returns [`DgkError::MalformedCiphertext`] for values outside `Z_n`.
    pub fn is_zero(&self, c: &DgkCiphertext) -> Result<bool, DgkError> {
        if c.0 >= self.public.n || c.0.is_zero() {
            return Err(DgkError::MalformedCiphertext);
        }
        Ok(self.ctx_p.modpow(&(&c.0 % &self.p), &self.v_p, &self.p).is_one())
    }

    /// [`DgkPrivateKey::is_zero`] with caller-owned working buffers, so a
    /// loop over many ciphertexts pays zero heap allocation per test
    /// after the first. Bit-exact with `is_zero`.
    pub(crate) fn is_zero_scratch(
        &self,
        c: &DgkCiphertext,
        ws: &mut PowScratch,
    ) -> Result<bool, DgkError> {
        if c.0 >= self.public.n || c.0.is_zero() {
            return Err(DgkError::MalformedCiphertext);
        }
        let reduced = &c.0 % &self.p;
        match self.ctx_p.context(&self.p) {
            Some(ctx) => Ok(ctx.modpow_with_scratch(&reduced, &self.v_p, ws).is_one()),
            None => Ok(modpow(&reduced, &self.v_p, &self.p).is_one()),
        }
    }

    /// Batched zero test: one scratch-reusing half-size exponentiation
    /// per ciphertext (the CRT form — each test runs mod `p` only, never
    /// mod `n`). Sequential; for a parallel fan-out see
    /// [`DgkPrivateKey::is_zero_batch_par`].
    ///
    /// # Errors
    ///
    /// Returns the first [`DgkError::MalformedCiphertext`] in input order.
    pub fn is_zero_batch(&self, cs: &[DgkCiphertext]) -> Result<Vec<bool>, DgkError> {
        let mut ws = PowScratch::new();
        cs.iter().map(|c| self.is_zero_scratch(c, &mut ws)).collect()
    }

    /// [`DgkPrivateKey::is_zero_batch`] fanned out according to `par`:
    /// the batch splits into per-worker chunks, each chunk reusing one
    /// scratch. Results (and the error, if any) are identical to the
    /// sequential form at every thread count — chunking is
    /// contiguous and the lowest-index failure wins.
    ///
    /// # Errors
    ///
    /// Same as [`DgkPrivateKey::is_zero_batch`].
    pub fn is_zero_batch_par(
        &self,
        cs: &[DgkCiphertext],
        par: &Parallelism,
    ) -> Result<Vec<bool>, DgkError> {
        let par = par.with_item_cost_ns(self.zero_test_cost_ns());
        let workers = par.workers_for(cs.len());
        if workers <= 1 {
            return self.is_zero_batch(cs);
        }
        let chunk = cs.len().div_ceil(workers);
        let chunks: Vec<&[DgkCiphertext]> = cs.chunks(chunk).collect();
        let per_chunk = par.try_map(&chunks, |_, slice| self.is_zero_batch(slice))?;
        Ok(per_chunk.into_iter().flatten().collect())
    }

    /// Rough wall-clock model (ns) for one zero test (`v_p`-bit exponent
    /// mod `p`), used to hint [`Parallelism`] splitting.
    pub(crate) fn zero_test_cost_ns(&self) -> u64 {
        let k = self.p.bits().div_ceil(64).max(1);
        self.v_p.bits().max(1) * (k * k).max(4) * 5
    }

    /// Full decryption by table lookup over `Z_u`.
    ///
    /// # Errors
    ///
    /// Returns [`DgkError::MalformedCiphertext`] for out-of-group values and
    /// [`DgkError::DecryptionFailed`] if the lookup misses (which indicates
    /// the ciphertext was not produced under this key).
    pub fn decrypt(&self, c: &DgkCiphertext) -> Result<u64, DgkError> {
        if c.0 >= self.public.n || c.0.is_zero() {
            return Err(DgkError::MalformedCiphertext);
        }
        let reduced = self.ctx_p.modpow(&(&c.0 % &self.p), &self.v_p, &self.p);
        self.table.get(&reduced).copied().ok_or(DgkError::DecryptionFailed)
    }

    /// Generator of the order-`u` subgroup mod `p` (exposed for tests).
    pub fn subgroup_generator(&self) -> &Ubig {
        &self.g_vp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    /// Shared keypair: generation dominates test time otherwise.
    fn keys() -> &'static DgkKeypair {
        static KEYS: OnceLock<DgkKeypair> = OnceLock::new();
        KEYS.get_or_init(|| {
            DgkKeypair::generate(&mut StdRng::seed_from_u64(11), &DgkParams::insecure_test())
        })
    }

    #[test]
    fn roundtrip_all_plaintexts() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(1);
        let u = kp.public_key().plaintext_space().to_u64().unwrap();
        for m in 0..u {
            let c = kp.public_key().encrypt_u64(m, &mut rng);
            assert_eq!(kp.private_key().decrypt(&c).unwrap(), m, "roundtrip {m}");
        }
    }

    #[test]
    fn zero_test_is_exact() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(2);
        let c0 = kp.public_key().encrypt_u64(0, &mut rng);
        assert!(kp.private_key().is_zero(&c0).unwrap());
        for m in [1u64, 2, 5, 17] {
            let c = kp.public_key().encrypt_u64(m, &mut rng);
            assert!(!kp.private_key().is_zero(&c).unwrap(), "E({m}) is not zero");
        }
    }

    #[test]
    fn homomorphic_add_mod_u() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(3);
        let pk = kp.public_key();
        let u = pk.plaintext_space().to_u64().unwrap();
        let (m1, m2) = (u - 2, 5);
        let c = pk.add(&pk.encrypt_u64(m1, &mut rng), &pk.encrypt_u64(m2, &mut rng));
        assert_eq!(kp.private_key().decrypt(&c).unwrap(), (m1 + m2) % u);
    }

    #[test]
    fn homomorphic_scalar_and_neg() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(4);
        let pk = kp.public_key();
        let u = pk.plaintext_space().to_u64().unwrap();
        let c = pk.encrypt_u64(7, &mut rng);
        let scaled = pk.mul_plain(&c, &Ubig::from(6u64));
        assert_eq!(kp.private_key().decrypt(&scaled).unwrap(), 42 % u);
        let negated = pk.neg(&c);
        assert_eq!(kp.private_key().decrypt(&negated).unwrap(), u - 7);
        // E(m) * E(-m) = E(0).
        let zero = pk.add(&c, &negated);
        assert!(kp.private_key().is_zero(&zero).unwrap());
    }

    #[test]
    fn blinding_preserves_zeroness() {
        // The comparison protocol blinds c^r for random r in [1, u): zero
        // stays zero, nonzero stays nonzero.
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(5);
        let pk = kp.public_key();
        let c0 = pk.encrypt_u64(0, &mut rng);
        let c3 = pk.encrypt_u64(3, &mut rng);
        for r in [1u64, 2, 10, 20] {
            let b0 = pk.mul_plain(&c0, &Ubig::from(r));
            let b3 = pk.mul_plain(&c3, &Ubig::from(r));
            assert!(kp.private_key().is_zero(&b0).unwrap());
            assert!(!kp.private_key().is_zero(&b3).unwrap());
        }
    }

    #[test]
    fn rerandomization_changes_ciphertext_only() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(6);
        let pk = kp.public_key();
        let c = pk.encrypt_u64(9, &mut rng);
        let c2 = pk.rerandomize(&c, &mut rng);
        assert_ne!(c, c2);
        assert_eq!(kp.private_key().decrypt(&c2).unwrap(), 9);
    }

    #[test]
    fn message_out_of_range() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(7);
        let u = kp.public_key().plaintext_space().clone();
        assert_eq!(kp.public_key().encrypt(&u, &mut rng), Err(DgkError::MessageOutOfRange));
    }

    #[test]
    fn malformed_ciphertext_rejected() {
        let kp = keys();
        let big = DgkCiphertext::from_raw(kp.public_key().modulus().clone());
        assert_eq!(kp.private_key().is_zero(&big), Err(DgkError::MalformedCiphertext));
        let zero = DgkCiphertext::from_raw(Ubig::zero());
        assert_eq!(kp.private_key().decrypt(&zero), Err(DgkError::MalformedCiphertext));
    }

    #[test]
    fn batched_zero_test_matches_per_item() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(10);
        let pk = kp.public_key();
        let cs: Vec<DgkCiphertext> =
            [0u64, 3, 0, 1, 17, 0, 8].iter().map(|&m| pk.encrypt_u64(m, &mut rng)).collect();
        let expect: Vec<bool> = cs.iter().map(|c| kp.private_key().is_zero(c).unwrap()).collect();
        assert_eq!(kp.private_key().is_zero_batch(&cs).unwrap(), expect);
        // The parallel fan-out must agree at every thread count.
        for threads in [1usize, 2, 4] {
            let par = Parallelism::new(threads).with_min_batch(1);
            assert_eq!(
                kp.private_key().is_zero_batch_par(&cs, &par).unwrap(),
                expect,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn batched_zero_test_error_matches_sequential() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(12);
        let pk = kp.public_key();
        let mut cs: Vec<DgkCiphertext> =
            (0..6u64).map(|m| pk.encrypt_u64(m % 3, &mut rng)).collect();
        cs.insert(3, DgkCiphertext::from_raw(Ubig::zero()));
        assert_eq!(kp.private_key().is_zero_batch(&cs), Err(DgkError::MalformedCiphertext));
        let par = Parallelism::new(4).with_min_batch(1);
        assert_eq!(
            kp.private_key().is_zero_batch_par(&cs, &par),
            Err(DgkError::MalformedCiphertext)
        );
    }

    #[test]
    fn plaintext_prime_exceeds_protocol_bound() {
        let mut rng = StdRng::seed_from_u64(8);
        let params = DgkParams::insecure_test();
        let u = params.plaintext_prime(&mut rng).to_u64().unwrap();
        assert!(u > 3 * params.compare_bits as u64 + 5);
    }

    #[test]
    fn encrypt_bit_helper() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(9);
        let c1 = kp.public_key().encrypt_bit(true, &mut rng);
        let c0 = kp.public_key().encrypt_bit(false, &mut rng);
        assert_eq!(kp.private_key().decrypt(&c1).unwrap(), 1);
        assert!(kp.private_key().is_zero(&c0).unwrap());
    }
}
