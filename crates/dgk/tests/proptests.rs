//! Property-based tests for the DGK comparison protocol: thread-count
//! invariance of every data-parallel round message. The parallel paths
//! split work across seed-derived per-item RNG streams, so whatever the
//! worker count, each round-1/round-2 message must be bit-identical to
//! the sequential execution under the same caller seed.

use dgk::comparison::{
    blinder_build_witnesses_par, evaluator_decide, evaluator_decide_par, evaluator_encrypt_bits_par,
};
use dgk::{DgkCiphertext, DgkKeypair, DgkParams};
use parallel::Parallelism;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One shared keypair: DGK keygen is the expensive part and the
/// properties quantify over compared values and seeds, not keys.
fn keypair() -> &'static DgkKeypair {
    use std::sync::OnceLock;
    static KP: OnceLock<DgkKeypair> = OnceLock::new();
    KP.get_or_init(|| {
        DgkKeypair::generate(&mut StdRng::seed_from_u64(913), &DgkParams::insecure_test())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn round_messages_are_thread_count_invariant(
        raw_x in any::<u64>(),
        raw_y in any::<u64>(),
        threads in 2usize..9,
        seed in any::<u64>(),
    ) {
        let kp = keypair();
        let pk = kp.public_key();
        let mask = (1u64 << pk.compare_bits()) - 1;
        let (x, y) = (raw_x & mask, raw_y & mask);
        let seq = Parallelism::sequential();
        let par = Parallelism::new(threads);

        let mut rng_seq = StdRng::seed_from_u64(seed);
        let mut rng_par = StdRng::seed_from_u64(seed);
        let r1_seq = evaluator_encrypt_bits_par(x, pk, &seq, &mut rng_seq).unwrap();
        let r1_par = evaluator_encrypt_bits_par(x, pk, &par, &mut rng_par).unwrap();
        prop_assert_eq!(&r1_seq, &r1_par);

        let r2_seq = blinder_build_witnesses_par(y, &r1_seq, pk, &seq, &mut rng_seq).unwrap();
        let r2_par = blinder_build_witnesses_par(y, &r1_par, pk, &par, &mut rng_par).unwrap();
        prop_assert_eq!(&r2_seq, &r2_par);
        // Both executions drew the same number of values from the caller RNG.
        prop_assert_eq!(rng_seq.gen::<u64>(), rng_par.gen::<u64>());

        // The zero-test decision agrees between the parallel scan and the
        // sequential early-exit, and matches the protocol's meaning.
        let d_seq = evaluator_decide(&r2_seq, kp.private_key()).unwrap();
        let d_par = evaluator_decide_par(&r2_par, kp.private_key(), &par).unwrap();
        prop_assert_eq!(d_seq, d_par);
        prop_assert_eq!(d_par, y > x);
    }

    /// The batched zero test (one exponentiation scratch per worker, CRT
    /// form) agrees with the per-item [`DgkPrivateKey::is_zero`] on every
    /// input, and its parallel fan-out is thread-count invariant.
    #[test]
    fn batched_zero_test_matches_per_item(
        raw in proptest::collection::vec(any::<u64>(), 0..24),
        threads in 1usize..9,
        seed in any::<u64>(),
    ) {
        let kp = keypair();
        let pk = kp.public_key();
        let sk = kp.private_key();
        let u = pk.plaintext_space().to_u64().unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        // Every third slot forced to an encryption of zero so both
        // branches of the test see real traffic.
        let cs: Vec<DgkCiphertext> = raw
            .iter()
            .map(|&m| pk.encrypt_u64(if m % 3 == 0 { 0 } else { m % u }, &mut rng))
            .collect();
        let expect: Vec<bool> = cs.iter().map(|c| sk.is_zero(c).unwrap()).collect();
        prop_assert_eq!(sk.is_zero_batch(&cs).unwrap(), expect.clone());
        let par = Parallelism::new(threads).with_min_batch(1);
        prop_assert_eq!(sk.is_zero_batch_par(&cs, &par).unwrap(), expect);
    }
}
