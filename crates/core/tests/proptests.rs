//! Property-based tests for the consensus decision layer.

use consensus_core::algorithms::{
    aggregate, argmax_i64, private_aggregate, threshold_decision_scaled,
};
use consensus_core::clear::ClearEngine;
use consensus_core::config::{scale_votes, split_evenly, ConsensusConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy for a vote-count vector.
fn counts(k: usize) -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(0i64..(100 * 65536), k)
}

proptest! {
    #[test]
    fn decision_releases_only_above_threshold(c in counts(5), z1 in counts(5), t in 0i64..(100 * 65536)) {
        // If released, the gate condition held; if not, it failed.
        let zeros = vec![0i64; 5];
        let decision = threshold_decision_scaled(&c, &z1, &zeros, t);
        let i_star = argmax_i64(&c);
        prop_assert_eq!(decision.is_some(), c[i_star] + z1[i_star] >= t);
    }

    #[test]
    fn released_label_is_noisy_argmax(c in counts(4), z2 in counts(4)) {
        // Threshold at −∞ (0 with non-negative counts): always released,
        // and the winner is argmax(c + z2).
        let zeros = vec![0i64; 4];
        let decision = threshold_decision_scaled(&c, &zeros, &z2, 0);
        let noisy: Vec<i64> = c.iter().zip(&z2).map(|(&a, &b)| a + b).collect();
        prop_assert_eq!(decision, Some(argmax_i64(&noisy)));
    }

    #[test]
    fn decision_is_invariant_to_common_shift(c in counts(4), shift in 0i64..(1 << 20)) {
        // Adding the same constant to every count and to the threshold
        // leaves the decision unchanged (the protocol's mask identity).
        let zeros = vec![0i64; 4];
        let t = 50 * 65536;
        let shifted: Vec<i64> = c.iter().map(|&x| x + shift).collect();
        prop_assert_eq!(
            threshold_decision_scaled(&c, &zeros, &zeros, t),
            threshold_decision_scaled(&shifted, &zeros, &zeros, t + shift)
        );
    }

    #[test]
    fn split_evenly_partitions_exactly(total in -(1i64 << 40)..(1i64 << 40), parts in 1usize..300) {
        let pieces = split_evenly(total, parts);
        prop_assert_eq!(pieces.len(), parts);
        prop_assert_eq!(pieces.iter().sum::<i64>(), total);
        let max = *pieces.iter().max().unwrap();
        let min = *pieces.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn alg4_with_tiny_noise_equals_alg1(
        votes in proptest::collection::vec(0usize..4, 10),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = vec![0.0f64; 4];
        for &v in &votes {
            c[v] += 1.0;
        }
        let config = ConsensusConfig::paper_default(1e-12, 1e-12);
        // At the exact boundary c_max == T, an infinitesimal negative noise
        // draw legitimately flips the ≥ test — skip that measure-zero edge.
        let c_max = c.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assume!((c_max - config.threshold_votes(10)).abs() > 1e-6);
        prop_assert_eq!(
            private_aggregate(&c, 10, &config, &mut rng),
            aggregate(&c, 10, &config)
        );
    }

    #[test]
    fn clear_engine_counts_are_exact(
        votes in proptest::collection::vec(0usize..3, 6),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let engine = ClearEngine::new(ConsensusConfig::paper_default(1.0, 1.0), 6, 3);
        let matrix: Vec<Vec<f64>> = votes
            .iter()
            .map(|&v| {
                let mut row = vec![0.0; 3];
                row[v] = 1.0;
                row
            })
            .collect();
        let out = engine.decide(&matrix, &mut rng);
        let mut expect = vec![0i64; 3];
        for &v in &votes {
            expect[v] += scale_votes(1.0);
        }
        prop_assert_eq!(out.counts_scaled, expect);
    }

    #[test]
    fn scaled_threshold_matches_float_threshold(frac in 0.01f64..1.0, users in 1usize..200) {
        let config = ConsensusConfig::new(frac, 1.0, 1.0);
        let scaled = scale_votes(config.threshold_votes(users));
        let expect = (frac * users as f64 * 65536.0).round() as i64;
        prop_assert_eq!(scaled, expect);
    }
}
