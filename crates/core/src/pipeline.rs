//! End-to-end experiment drivers: teachers → consensus labeling →
//! student, for the single-label (MNIST/SVHN surrogates) and multi-label
//! (CelebA surrogate) workloads. The figure/table binaries in the `bench`
//! crate are thin loops over these.

use dp::rdp::LinearRdp;
use mlsim::dataset::{Dataset, MultiLabelDataset};
use mlsim::model::TrainConfig;
use mlsim::partition::{division_split, even_split, Division, Partition};
use mlsim::student::{train_student, train_student_multilabel, LabelingStats};
use mlsim::synthetic::{GaussianMixtureSpec, SparseAttributeSpec};
use mlsim::teacher::{MultiLabelEnsemble, TeacherEnsemble, UserAccuracy};
use rand::Rng;

use crate::algorithms::{aggregate, baseline_noisy_max};
use crate::clear::ClearEngine;
use crate::config::{ConsensusConfig, VoteKind};

/// How the aggregator labels public instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelingMode {
    /// The paper's private consensus protocol (Alg. 5 semantics).
    Consensus,
    /// The §VI-C baseline: noisy max on every query, no threshold,
    /// "applying the same differential privacy scheme" — the same `σ₂`
    /// Report-Noisy-Max noise as the consensus protocol. (Set
    /// `baseline_parity` on the experiment to instead recalibrate the
    /// baseline's noise down until its per-query ε matches the consensus
    /// protocol's SVT+RNM ε — an ablation favouring the baseline.)
    Baseline,
    /// Alg. 1: exact threshold aggregation, no privacy (reference upper
    /// bound).
    NonPrivate,
}

/// How instances are distributed across users.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitionKind {
    /// Even random split.
    Even,
    /// One of the paper's uneven divisions.
    Uneven(Division),
}

impl PartitionKind {
    fn build<R: Rng + ?Sized>(&self, n: usize, users: usize, rng: &mut R) -> Partition {
        match self {
            PartitionKind::Even => even_split(n, users, rng),
            PartitionKind::Uneven(d) => division_split(n, users, *d, rng),
        }
    }
}

/// Solves for the noisy-max-only noise scale whose per-query `(ε, δ)`
/// matches one consensus query at `(σ₁, σ₂)` — privacy parity for the
/// baseline.
pub fn baseline_sigma_for_parity(config: &ConsensusConfig, delta: f64) -> f64 {
    let target = LinearRdp::sparse_vector(config.sigma1)
        .compose(&LinearRdp::report_noisy_max(config.sigma2))
        .to_epsilon(delta);
    // ε is strictly decreasing in σ for the RNM curve; bisect.
    let (mut lo, mut hi) = (1e-4, 1e8);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if LinearRdp::report_noisy_max(mid).to_epsilon(delta) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Result of one full experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutcome {
    /// Query / retention / label-accuracy statistics.
    pub label_stats: LabelingStats,
    /// The student's test accuracy ("aggregator accuracy"); 0 when no
    /// labels were retained.
    pub aggregator_accuracy: f64,
    /// Teacher accuracy summary ("user accuracy", Fig. 2).
    pub user_accuracy: UserAccuracy,
    /// Total `(ε, δ=delta)` spent across all issued queries.
    pub epsilon: f64,
    /// Multi-label only: fraction of attribute queries that reached
    /// consensus (`None` for single-label runs). The paper's CelebA
    /// pathology shows up here — contested positive attributes fail.
    pub consensus_rate: Option<f64>,
}

/// Configuration of a single-label experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleLabelExperiment {
    /// Dataset family (mnist-like / svhn-like).
    pub spec: GaussianMixtureSpec,
    /// Number of users.
    pub num_users: usize,
    /// Data distribution across users.
    pub partition: PartitionKind,
    /// Consensus parameters.
    pub config: ConsensusConfig,
    /// Labeling mode.
    pub mode: LabelingMode,
    /// Private training instances (split across users).
    pub train_size: usize,
    /// Public unlabeled instances the aggregator queries.
    pub public_size: usize,
    /// Held-out test instances.
    pub test_size: usize,
    /// Teacher/student SGD hyperparameters.
    pub train_config: TrainConfig,
    /// DP failure probability for ε reporting.
    pub delta: f64,
    /// When true, recalibrate the baseline's noise to per-query ε parity
    /// instead of reusing the consensus σ₂ (see [`LabelingMode::Baseline`]).
    pub baseline_parity: bool,
}

impl SingleLabelExperiment {
    /// A small default geometry: sizes chosen so a full grid of runs
    /// stays fast while the learning curves remain visible.
    pub fn new(spec: GaussianMixtureSpec, num_users: usize, config: ConsensusConfig) -> Self {
        SingleLabelExperiment {
            spec,
            num_users,
            partition: PartitionKind::Even,
            config,
            mode: LabelingMode::Consensus,
            train_size: 4000,
            public_size: 600,
            test_size: 800,
            train_config: TrainConfig::default(),
            delta: 1e-6,
            baseline_parity: false,
        }
    }

    /// Sets the labeling mode.
    #[must_use]
    pub fn with_mode(mut self, mode: LabelingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the partition kind.
    #[must_use]
    pub fn with_partition(mut self, partition: PartitionKind) -> Self {
        self.partition = partition;
        self
    }

    /// Runs the experiment: train teachers, label the public set, train
    /// the student, evaluate.
    pub fn run<R: Rng + ?Sized>(&self, rng: &mut R) -> ExperimentOutcome {
        let train = self.spec.generate(self.train_size, rng);
        let public = self.spec.generate(self.public_size, rng);
        let test = self.spec.generate(self.test_size, rng);
        self.run_on(&train, &public, &test, rng)
    }

    /// Runs on caller-provided datasets (so sweeps can share data).
    pub fn run_on<R: Rng + ?Sized>(
        &self,
        train: &Dataset,
        public: &Dataset,
        test: &Dataset,
        rng: &mut R,
    ) -> ExperimentOutcome {
        let partition = self.partition.build(train.len(), self.num_users, rng);
        let ensemble = TeacherEnsemble::train(train, &partition, &self.train_config, rng);
        let user_accuracy = ensemble.user_accuracy(test, &partition);

        let engine = ClearEngine::new(self.config, self.num_users, train.num_classes);
        let baseline_sigma = if self.baseline_parity {
            baseline_sigma_for_parity(&self.config, self.delta)
        } else {
            self.config.sigma2
        };

        let mut released: Vec<(usize, usize)> = Vec::new();
        let mut kept_features: Vec<Vec<f64>> = Vec::new();
        let mut kept_labels: Vec<usize> = Vec::new();
        for (x, &truth) in public.features.iter().zip(&public.labels) {
            let label = match self.mode {
                LabelingMode::Consensus => {
                    let votes = match self.config.vote_kind {
                        VoteKind::OneHot => ensemble.votes_onehot(x),
                        VoteKind::Softmax => ensemble.votes_softmax(x),
                    };
                    engine.decide(&votes, rng).label
                }
                LabelingMode::Baseline => {
                    let counts = match self.config.vote_kind {
                        VoteKind::OneHot => ensemble.vote_counts(x),
                        VoteKind::Softmax => {
                            let votes = ensemble.votes_softmax(x);
                            (0..train.num_classes)
                                .map(|k| votes.iter().map(|v| v[k]).sum())
                                .collect()
                        }
                    };
                    let parity_config =
                        ConsensusConfig::new(self.config.threshold_fraction, 1.0, baseline_sigma);
                    Some(baseline_noisy_max(&counts, &parity_config, rng))
                }
                LabelingMode::NonPrivate => {
                    aggregate(&ensemble.vote_counts(x), self.num_users, &self.config)
                }
            };
            if let Some(l) = label {
                released.push((l, truth));
                kept_features.push(x.clone());
                kept_labels.push(l);
            }
        }

        let label_stats = LabelingStats::from_released(&released, public.len());
        let aggregator_accuracy =
            train_student(&kept_features, &kept_labels, train.num_classes, &self.train_config, rng)
                .map_or(0.0, |student| student.accuracy(test));

        let epsilon = match self.mode {
            LabelingMode::Consensus => self.config.epsilon(public.len() as u64, self.delta),
            LabelingMode::Baseline => LinearRdp::report_noisy_max(baseline_sigma)
                .repeat(public.len() as u64)
                .to_epsilon(self.delta),
            LabelingMode::NonPrivate => f64::INFINITY,
        };

        ExperimentOutcome {
            label_stats,
            aggregator_accuracy,
            user_accuracy,
            epsilon,
            consensus_rate: None,
        }
    }
}

/// How multi-label queries handle attributes that fail consensus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiLabelPolicy {
    /// Keep a sample only if *every* attribute reached consensus.
    /// Retention collapses quickly as attributes multiply — kept as an
    /// ablation.
    AllAttributes,
    /// Keep every sample; attributes without consensus default to the
    /// majority (negative) class. This is the default: it reproduces the
    /// CelebA pathology the paper reports — contested positive attributes
    /// are discarded, label vectors become "highly similar" (≈97%) and
    /// negative-dominated, and the student overfits as users grow.
    FillMajority,
}

/// Configuration of a multi-label (CelebA-like) experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiLabelExperiment {
    /// Dataset family.
    pub spec: SparseAttributeSpec,
    /// Number of users.
    pub num_users: usize,
    /// Data distribution across users.
    pub partition: PartitionKind,
    /// Consensus parameters (per attribute, 2 classes).
    pub config: ConsensusConfig,
    /// Labeling mode.
    pub mode: LabelingMode,
    /// Consensus-failure policy.
    pub policy: MultiLabelPolicy,
    /// Private training instances.
    pub train_size: usize,
    /// Public instances queried.
    pub public_size: usize,
    /// Test instances.
    pub test_size: usize,
    /// SGD hyperparameters.
    pub train_config: TrainConfig,
    /// DP failure probability.
    pub delta: f64,
    /// Baseline noise policy (see [`LabelingMode::Baseline`]).
    pub baseline_parity: bool,
}

impl MultiLabelExperiment {
    /// Default geometry, mirroring [`SingleLabelExperiment::new`].
    pub fn new(spec: SparseAttributeSpec, num_users: usize, config: ConsensusConfig) -> Self {
        MultiLabelExperiment {
            spec,
            num_users,
            partition: PartitionKind::Even,
            config,
            mode: LabelingMode::Consensus,
            policy: MultiLabelPolicy::FillMajority,
            train_size: 3000,
            public_size: 400,
            test_size: 600,
            train_config: TrainConfig::default(),
            delta: 1e-6,
            baseline_parity: false,
        }
    }

    /// Sets the labeling mode.
    #[must_use]
    pub fn with_mode(mut self, mode: LabelingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the partition kind.
    #[must_use]
    pub fn with_partition(mut self, partition: PartitionKind) -> Self {
        self.partition = partition;
        self
    }

    /// Runs the experiment.
    pub fn run<R: Rng + ?Sized>(&self, rng: &mut R) -> ExperimentOutcome {
        let train = self.spec.generate(self.train_size, rng);
        let public = self.spec.generate(self.public_size, rng);
        let test = self.spec.generate(self.test_size, rng);
        self.run_on(&train, &public, &test, rng)
    }

    /// Runs on caller-provided datasets.
    pub fn run_on<R: Rng + ?Sized>(
        &self,
        train: &MultiLabelDataset,
        public: &MultiLabelDataset,
        test: &MultiLabelDataset,
        rng: &mut R,
    ) -> ExperimentOutcome {
        let partition = self.partition.build(train.len(), self.num_users, rng);
        let ensemble = MultiLabelEnsemble::train(train, &partition, &self.train_config, rng);
        let user_accuracy = ensemble.user_accuracy(test, &partition);

        // Each attribute is a 2-class (negative/positive) consensus vote.
        let engine = ClearEngine::new(self.config, self.num_users, 2);
        let baseline_sigma = if self.baseline_parity {
            baseline_sigma_for_parity(&self.config, self.delta)
        } else {
            self.config.sigma2
        };
        let parity_config =
            ConsensusConfig::new(self.config.threshold_fraction, 1.0, baseline_sigma);

        let mut kept_features: Vec<Vec<f64>> = Vec::new();
        let mut kept_attrs: Vec<Vec<bool>> = Vec::new();
        let mut attr_correct = 0usize;
        let mut attr_total = 0usize;
        let mut queries = 0u64;
        let mut consensus_hits = 0u64;
        for (x, truth) in public.features.iter().zip(&public.attributes) {
            let pos_counts = ensemble.attribute_vote_counts(x);
            let mut attrs = Vec::with_capacity(public.num_attributes);
            let mut complete = true;
            for (j, &pos) in pos_counts.iter().enumerate() {
                queries += 1;
                let neg = self.num_users as f64 - pos;
                let decided: Option<bool> = match self.mode {
                    LabelingMode::Consensus => {
                        let votes: Vec<Vec<f64>> = (0..self.num_users)
                            .map(|u| if (u as f64) < pos { vec![0.0, 1.0] } else { vec![1.0, 0.0] })
                            .collect();
                        engine.decide(&votes, rng).label.map(|l| l == 1)
                    }
                    LabelingMode::Baseline => {
                        Some(baseline_noisy_max(&[neg, pos], &parity_config, rng) == 1)
                    }
                    LabelingMode::NonPrivate => {
                        aggregate(&[neg, pos], self.num_users, &self.config).map(|l| l == 1)
                    }
                };
                match decided {
                    Some(bit) => {
                        consensus_hits += 1;
                        attrs.push(bit);
                    }
                    None => match self.policy {
                        MultiLabelPolicy::AllAttributes => {
                            complete = false;
                            break;
                        }
                        MultiLabelPolicy::FillMajority => attrs.push(false),
                    },
                }
                let _ = j;
            }
            if complete {
                attr_correct += attrs.iter().zip(truth).filter(|(a, t)| a == t).count();
                attr_total += attrs.len();
                kept_features.push(x.clone());
                kept_attrs.push(attrs);
            }
        }

        let label_stats = LabelingStats {
            queried: public.len(),
            retained: kept_features.len(),
            label_accuracy: if attr_total == 0 {
                0.0
            } else {
                attr_correct as f64 / attr_total as f64
            },
        };
        let aggregator_accuracy = train_student_multilabel(
            &kept_features,
            &kept_attrs,
            public.num_attributes,
            &self.train_config,
            rng,
        )
        .map_or(0.0, |student| student.accuracy(test));

        let epsilon = match self.mode {
            LabelingMode::Consensus => self.config.epsilon(queries, self.delta),
            LabelingMode::Baseline => {
                LinearRdp::report_noisy_max(baseline_sigma).repeat(queries).to_epsilon(self.delta)
            }
            LabelingMode::NonPrivate => f64::INFINITY,
        };

        ExperimentOutcome {
            label_stats,
            aggregator_accuracy,
            user_accuracy,
            epsilon,
            consensus_rate: Some(if queries == 0 {
                0.0
            } else {
                consensus_hits as f64 / queries as f64
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fast_experiment(mode: LabelingMode) -> SingleLabelExperiment {
        let mut exp = SingleLabelExperiment::new(
            GaussianMixtureSpec::mnist_like(),
            10,
            ConsensusConfig::paper_default(2.0, 2.0),
        )
        .with_mode(mode);
        exp.train_size = 800;
        exp.public_size = 150;
        exp.test_size = 300;
        exp.train_config = TrainConfig { epochs: 12, ..TrainConfig::default() };
        exp
    }

    #[test]
    fn consensus_produces_accurate_labels_on_easy_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = fast_experiment(LabelingMode::Consensus).run(&mut rng);
        assert!(out.label_stats.label_accuracy > 0.8, "{:?}", out.label_stats);
        assert!(out.label_stats.retention() > 0.4, "{:?}", out.label_stats);
        assert!(out.aggregator_accuracy > 0.6, "aggregator {}", out.aggregator_accuracy);
        assert!(out.epsilon.is_finite() && out.epsilon > 0.0);
    }

    #[test]
    fn nonprivate_mode_reports_infinite_epsilon() {
        let mut rng = StdRng::seed_from_u64(2);
        let out = fast_experiment(LabelingMode::NonPrivate).run(&mut rng);
        assert!(out.epsilon.is_infinite());
        assert!(out.label_stats.label_accuracy > 0.8);
    }

    #[test]
    fn baseline_answers_every_query() {
        let mut rng = StdRng::seed_from_u64(3);
        let out = fast_experiment(LabelingMode::Baseline).run(&mut rng);
        assert_eq!(out.label_stats.retained, out.label_stats.queried);
    }

    #[test]
    fn baseline_parity_matches_consensus_epsilon() {
        let config = ConsensusConfig::paper_default(30.0, 30.0);
        let sigma_b = baseline_sigma_for_parity(&config, 1e-6);
        let consensus_eps = config.epsilon(1, 1e-6);
        let baseline_eps = LinearRdp::report_noisy_max(sigma_b).to_epsilon(1e-6);
        assert!((consensus_eps - baseline_eps).abs() < 1e-6, "{consensus_eps} vs {baseline_eps}");
        // RNM-only needs less noise than the SVT+RNM pair for the same ε.
        assert!(sigma_b < 30.0 * 1.7 && sigma_b > 10.0, "sigma_b {sigma_b}");
    }

    #[test]
    fn multilabel_consensus_runs() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut exp = MultiLabelExperiment::new(
            SparseAttributeSpec::celeba_like(),
            8,
            ConsensusConfig::paper_default(1.0, 1.0),
        );
        exp.train_size = 500;
        exp.public_size = 40;
        exp.test_size = 200;
        exp.train_config = TrainConfig { epochs: 8, ..TrainConfig::default() };
        let out = exp.run(&mut rng);
        assert!(out.label_stats.retained <= out.label_stats.queried);
        if out.label_stats.retained > 0 {
            assert!(out.label_stats.label_accuracy > 0.6, "{:?}", out.label_stats);
        }
    }

    #[test]
    fn uneven_partition_lowers_retention() {
        // Table III's effect: more unevenness → fewer retained samples.
        let mut rng = StdRng::seed_from_u64(5);
        let mut even = fast_experiment(LabelingMode::Consensus);
        even.spec = GaussianMixtureSpec::svhn_like();
        let mut uneven = even.clone().with_partition(PartitionKind::Uneven(Division::D28));
        uneven.spec = GaussianMixtureSpec::svhn_like();
        let r_even = even.run(&mut rng).label_stats.retention();
        let r_uneven = uneven.run(&mut rng).label_stats.retention();
        assert!(
            r_even >= r_uneven - 0.05,
            "even retention {r_even} should not trail uneven {r_uneven} by much"
        );
    }
}
