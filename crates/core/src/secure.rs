//! The full secure execution of Alg. 5 over real channels.
//!
//! One [`SecureEngine::run_instance`] call performs, for a single query
//! instance:
//!
//! 1. **Setup** — each user splits its scaled vote vector into additive
//!    shares, draws distributed noise shares, and embeds its slice of the
//!    threshold (`T/(2|U|)` per share side, split exactly);
//! 2. **Secure sum (step 2)** — users upload `E_pk2[a^u]`,
//!    `E_pk2[a^u − T/(2|U|) + z₁ₐ^u]` to S1 and the mirrored vectors to
//!    S2; servers aggregate homomorphically;
//! 3. **Blind-and-Permute (step 3)** — both aggregated vectors pass
//!    through Alg. 2 under one shared hidden permutation `π`;
//! 4. **Secure comparison (step 4)** — pairwise DGK ranking finds the
//!    permuted winner slot `π(i*)`;
//! 5. **Threshold check (step 5)** — one DGK comparison of the two
//!    threshold sequences at `π(i*)` decides
//!    `c_{i*} + N(0, σ₁²) ≥ T`; on failure both servers output `⊥`;
//! 6. **Secure sum (step 6)** — the noisy vote shares
//!    `a^u + z₂ₐ^u` / `b^u + z₂ᵦ^u` are aggregated;
//! 7. **Blind-and-Permute (step 7)** — under a fresh permutation `π′`;
//! 8. **Secure comparison (step 8)** — pairwise ranking of the noisy
//!    votes finds `π′(ĩ*)`;
//! 9. **Restoration (step 9)** — Alg. 3 recovers and publishes `ĩ*`.
//!
//! The engine runs users up-front (they are non-interactive senders) and
//! the two servers on real threads. Every message is metered per step,
//! and S1's thread records per-step wall time — together regenerating
//! Tables I and II.
//!
//! # Failure model
//!
//! By default the protocol is strict: any lost user upload fails the
//! round with a transport error. Configuring a quorum
//! ([`ConsensusConfig::with_min_users`]) or attaching a
//! [`FaultPlan`](transport::FaultPlan) switches the engine to
//! *dropout-resilient* rounds: the servers collect whatever arrives
//! within the round deadline, reconcile their surviving sets over the
//! server↔server link, and either continue over `U' ⊆ U` or abort with
//! the typed [`SmcError::QuorumLost`]. Every outcome carries a
//! [`RoundHealth`] record of who survived, who dropped at which step,
//! and the noise scale actually realized (see `DESIGN.md`, "Failure
//! model").

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use paillier::Ciphertext;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smc::argmax::{
    server1_argmax_pairwise, server1_argmax_tournament, server2_argmax_pairwise,
    server2_argmax_tournament,
};
use smc::batch::{server1_argmax_batched, server2_argmax_batched};
use smc::blind_permute::{server1_blind_permute, server2_blind_permute};
use smc::compare::{server1_compare_geq, server2_compare_geq};
use smc::restoration::{server1_restore, server2_restore};
use smc::secure_sum::{
    aggregate_surviving_vectors_sharded, aggregate_user_vectors_sharded, encrypt_share_vector,
};
use smc::{
    AuditCheckpoint, AuditContext, AuditPolicy, CheckpointImage, Parallelism, RoundState,
    ServerContext, SessionConfig, SessionKeys, ShardConfig, ShardPlan, SmcError,
};
use transport::{
    CheckpointStore, Endpoint, FaultEvent, FaultPlan, FaultStats, Meter, Network, PartyId, Step,
    TimeoutPolicy, TransportBackend, Wire,
};

use crate::clear::draw_user_noise_shares;
use crate::config::{scale_vote_vector, scale_votes, split_evenly, ConsensusConfig};

/// Aggregate quantities the simulation driver observed while playing all
/// users — the ground truth the secure output can be checked against
/// (Theorem 3 correctness). A real deployment has no such observer; this
/// exists because the harness legitimately controls every party.
///
/// Under dropout-resilient rounds the aggregates cover exactly the users
/// the servers actually counted: `counts_scaled`/`z1_scaled` sum over the
/// step-2 survivors `U'`, `noisy_counts_scaled`/`z2_scaled` over the
/// step-6 survivors `U'' ⊆ U'`, and `threshold_scaled` is the *effective*
/// threshold embedded in the surviving shares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureWitness {
    /// Exact scaled vote counts over the step-2 survivors.
    pub counts_scaled: Vec<i64>,
    /// Aggregated scaled threshold noise over the step-2 survivors.
    pub z1_scaled: Vec<i64>,
    /// Exact scaled vote counts over the step-6 survivors (equals
    /// `counts_scaled` whenever no user dropped between steps 2 and 6).
    pub noisy_counts_scaled: Vec<i64>,
    /// Aggregated scaled argmax noise over the step-6 survivors.
    pub z2_scaled: Vec<i64>,
    /// The effective scaled threshold the surviving shares embed.
    pub threshold_scaled: i64,
}

/// Structured fault history of one protocol round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundHealth {
    /// The roster the round was launched with.
    pub intended_users: Vec<usize>,
    /// Users whose step-2 upload reached both servers (`U'`).
    pub survivors: Vec<usize>,
    /// Users whose step-6 upload reached both servers (`U'' ⊆ U'`);
    /// `None` when the round never reached step 6 (threshold rejection).
    pub noisy_survivors: Option<Vec<usize>>,
    /// Users lost during the round, each with the step it first failed.
    pub dropouts: Vec<(usize, Step)>,
    /// Extended receive windows this round consumed.
    pub retries: u64,
    /// Receives that exhausted every retry window.
    pub timeouts: u64,
    /// The threshold-noise scale actually realized: the users drew
    /// shares calibrated for `|U|` participants, so the `|U'|` surviving
    /// shares sum to `N(0, σ₁²·|U'|/|U|)`.
    pub realized_sigma1: f64,
    /// The argmax-noise scale actually realized over `U''`; `None` when
    /// step 6 never ran.
    pub realized_sigma2: Option<f64>,
    /// How many times a crashed round attempt was resumed from durable
    /// checkpoints before this outcome was produced (0 = uninterrupted).
    pub resumptions: u64,
    /// For each resumption, the step the round re-entered the pipeline
    /// at after restoring the latest consistent S1/S2 snapshot pair.
    pub resumed_from: Vec<Step>,
    /// Covert-security audit challenges verified during the round (0
    /// when auditing is off or the round was not a challenge round).
    pub audit_challenges: u64,
}

impl RoundHealth {
    /// `true` when every intended user survived, no receive needed a
    /// retry and the round was never resumed from a checkpoint — it ran
    /// exactly as the strict protocol would.
    pub fn is_clean(&self) -> bool {
        self.dropouts.is_empty() && self.retries == 0 && self.timeouts == 0 && self.resumptions == 0
    }

    /// The RDP cost of the round *actually executed*: the Sparse Vector
    /// test at the realized `σ₁`, composed with Report Noisy Max at the
    /// realized `σ₂` only if the release step ran. Dropouts shrink the
    /// realized noise, so a faulty round charges **more** privacy budget
    /// than a clean one — the accountant must never assume the
    /// calibrated scales.
    ///
    /// # Panics
    ///
    /// Panics if a realized scale is zero (infinite privacy loss).
    pub fn charged_rdp(&self) -> dp::rdp::LinearRdp {
        let svt = dp::rdp::LinearRdp::sparse_vector(self.realized_sigma1);
        match self.realized_sigma2 {
            Some(s2) => svt.compose(&dp::rdp::LinearRdp::report_noisy_max(s2)),
            None => svt,
        }
    }
}

/// Output of one secure consensus query.
#[derive(Debug, Clone, PartialEq)]
pub struct SecureOutcome {
    /// The released label (`None` = `⊥`, threshold failed).
    pub label: Option<usize>,
    /// Driver-side ground truth for verification.
    pub witness: SecureWitness,
    /// Fault history: survivors, dropouts, retries, realized noise.
    pub health: RoundHealth,
}

/// Everything about a round's *consensus result* — as opposed to its
/// *execution history*. Two runs of the same round agree on this
/// fingerprint iff they released the same label from the same counted
/// contributions at the same realized noise scales; a recovered run
/// necessarily differs from an uninterrupted one in timeouts, retries
/// and resumption counters, and identically-recovered consensus is
/// exactly what the recovery subsystem guarantees (see `tests/chaos.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct ConsensusFingerprint {
    /// The released label (`None` = `⊥`).
    pub label: Option<usize>,
    /// Ground-truth aggregates over the counted users.
    pub witness: SecureWitness,
    /// The roster the round was launched with.
    pub intended_users: Vec<usize>,
    /// The step-2 surviving set `U'`.
    pub survivors: Vec<usize>,
    /// The step-6 surviving set `U''`, when step 6 ran.
    pub noisy_survivors: Option<Vec<usize>>,
    /// Users lost, each with the step it first failed.
    pub dropouts: Vec<(usize, Step)>,
    /// Realized threshold-noise scale.
    pub realized_sigma1: f64,
    /// Realized argmax-noise scale, when step 6 ran.
    pub realized_sigma2: Option<f64>,
}

impl SecureOutcome {
    /// Projects out the [`ConsensusFingerprint`] — the part of the
    /// outcome that must be bit-identical between a crash-recovered
    /// round and the same round run uninterrupted.
    pub fn consensus_fingerprint(&self) -> ConsensusFingerprint {
        ConsensusFingerprint {
            label: self.label,
            witness: self.witness.clone(),
            intended_users: self.health.intended_users.clone(),
            survivors: self.health.survivors.clone(),
            noisy_survivors: self.health.noisy_survivors.clone(),
            dropouts: self.health.dropouts.clone(),
            realized_sigma1: self.health.realized_sigma1,
            realized_sigma2: self.health.realized_sigma2,
        }
    }
}

/// How the servers rank the permuted sequences in steps 4 and 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankingStrategy {
    /// The paper's sequential all-pairs comparisons — `K(K−1)/2`
    /// three-message dialogues.
    #[default]
    Pairwise,
    /// Linear-scan champion tournament — `K−1` comparisons.
    Tournament,
    /// All pairs batched into three messages (same computation, minimal
    /// rounds; see `smc::batch`).
    Batched,
}

/// A provisioned secure deployment: session keys plus consensus
/// parameters.
pub struct SecureEngine {
    keys: SessionKeys,
    consensus: ConsensusConfig,
    ranking: RankingStrategy,
    timeout: TimeoutPolicy,
    faults: Option<FaultPlan>,
    transport: TransportBackend,
    audit: Option<AuditPolicy>,
    /// Monotonic round counter feeding the audit challenge schedule
    /// (each [`SecureEngine::run_round`] call is one audited round id).
    audit_rounds: AtomicU64,
}

impl std::fmt::Debug for SecureEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SecureEngine({:?})", self.keys.config())
    }
}

/// One user's six captured upload payloads, already encrypted. Sending
/// them is a pure replay: a supervisor can rebuild the network after a
/// crash and re-inject the *same* ciphertexts, which is what keeps a
/// recovered round bit-identical to an uninterrupted one.
pub(crate) struct UserUpload {
    pub(crate) user: usize,
    /// S1-bound: votes + threshold shares (step 2), noisy shares (step 6).
    pub(crate) s1_votes: Vec<Ciphertext>,
    pub(crate) s1_thresh: Vec<Ciphertext>,
    pub(crate) s1_noisy: Vec<Ciphertext>,
    /// S2-bound mirrors.
    pub(crate) s2_votes: Vec<Ciphertext>,
    pub(crate) s2_thresh: Vec<Ciphertext>,
    pub(crate) s2_noisy: Vec<Ciphertext>,
}

/// Everything drawn ONCE per logical round, before the first attempt:
/// user shares, noise, encrypted payloads, witness bookkeeping and the
/// two server seeds. Crash-recovery attempts replay this; nothing in it
/// is re-drawn, so every attempt reruns the *same* round.
pub(crate) struct PreparedRound {
    pub(crate) roster: Vec<usize>,
    pub(crate) num_classes: usize,
    pub(crate) uploads: Vec<UserUpload>,
    pub(crate) user_counts: Vec<Vec<i64>>,
    pub(crate) user_z1: Vec<Vec<i64>>,
    pub(crate) user_z2: Vec<Vec<i64>>,
    /// Exact integer split of T across 2|U| share slots.
    pub(crate) offsets: Vec<i64>,
    pub(crate) seed1: u64,
    pub(crate) seed2: u64,
    /// Round-shared seed for the shard plan — unlike the private per-server
    /// `seed1`/`seed2`, both servers derive the identical plan from it, so
    /// their per-shard survivor exchanges pair up without coordination.
    pub(crate) shard_seed: u64,
}

impl SecureEngine {
    /// Generates key material for `session` and binds the consensus
    /// parameters.
    pub fn new<R: Rng + ?Sized>(
        session: SessionConfig,
        consensus: ConsensusConfig,
        rng: &mut R,
    ) -> Self {
        Self::with_keys(SessionKeys::generate(session, rng), consensus)
    }

    /// Builds an engine from pre-generated keys. The keys' per-modulus
    /// exponentiation caches are warmed here so deserialized or
    /// hand-constructed keys start protocol rounds at full speed (keys
    /// from [`SessionKeys::generate`] arrive pre-warmed; the call is
    /// idempotent).
    pub fn with_keys(keys: SessionKeys, consensus: ConsensusConfig) -> Self {
        keys.precompute();
        SecureEngine {
            keys,
            consensus,
            ranking: RankingStrategy::default(),
            timeout: TimeoutPolicy::default(),
            faults: None,
            transport: TransportBackend::default(),
            audit: None,
            audit_rounds: AtomicU64::new(0),
        }
    }

    /// Selects the ranking strategy for steps 4 and 8.
    #[must_use]
    pub fn with_ranking(mut self, ranking: RankingStrategy) -> Self {
        self.ranking = ranking;
        self
    }

    /// Sets the per-receive deadline/retry policy every round's network
    /// is built with (the default waits 120 s with no retries).
    #[must_use]
    pub fn with_timeout(mut self, timeout: TimeoutPolicy) -> Self {
        self.timeout = timeout;
        self
    }

    /// Attaches a deterministic fault-injection plan to every round's
    /// network, and switches the engine to dropout-resilient rounds.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Selects the transport backend every round's network is built over
    /// (default in-proc channels). The protocol is backend-agnostic:
    /// rounds over loopback TCP produce fingerprints bit-identical to
    /// in-proc rounds under the same seed.
    #[must_use]
    pub fn with_transport(mut self, backend: TransportBackend) -> Self {
        self.transport = backend;
        self
    }

    /// The configured transport backend.
    pub fn transport(&self) -> TransportBackend {
        self.transport
    }

    /// Attaches a covert-security [`AuditPolicy`]: servers exchange
    /// commitments to their per-step randomness before every audited
    /// step, and a seeded `challenge_rate` fraction of rounds
    /// cross-verify the opened transcripts, turning a deviating server
    /// into a typed [`SmcError::AuditFailure`].
    #[must_use]
    pub fn with_audit(mut self, policy: AuditPolicy) -> Self {
        self.audit = Some(policy);
        self
    }

    /// The attached audit policy, if any.
    pub fn audit(&self) -> Option<AuditPolicy> {
        self.audit
    }

    /// Sets the data-parallelism config every party in every round uses
    /// for its crypto hot loops (Paillier batch encryption, per-label
    /// aggregation/masking, per-bit DGK witnesses, pairwise compare
    /// fan-out). Defaults to sequential. Protocol transcripts and
    /// outcomes are bit-identical for every setting — parallel loops
    /// derive per-item RNG streams from the same root draws the
    /// sequential path uses (see the `parallel` crate).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.keys.set_parallelism(parallelism);
        self
    }

    /// The configured data-parallelism.
    pub fn parallelism(&self) -> Parallelism {
        self.keys.parallelism()
    }

    /// The configured ranking strategy.
    pub fn ranking(&self) -> RankingStrategy {
        self.ranking
    }

    /// The session configuration.
    pub fn session_config(&self) -> &SessionConfig {
        self.keys.config()
    }

    /// The consensus configuration.
    pub fn consensus_config(&self) -> &ConsensusConfig {
        &self.consensus
    }

    /// Whether rounds run dropout-resilient (quorum configured or faults
    /// injected) instead of strict.
    pub fn resilient(&self) -> bool {
        self.faults.is_some() || self.consensus.min_users.is_some()
    }

    /// The quorum resilient rounds enforce: the configured `min_users`,
    /// or 1 when resilience was triggered by a fault plan alone.
    pub(crate) fn quorum(&self) -> usize {
        self.consensus.min_users.unwrap_or(1)
    }

    /// Runs a batch of queries sequentially, sharing the key material and
    /// meter — how the cost-table binaries drive multi-instance runs.
    ///
    /// In resilient mode the surviving roster carries across instances:
    /// a user that dropped out of round `k` is not waited for in round
    /// `k+1`, and the remaining users draw their distributed noise
    /// shares recalibrated to `N(0, σ²/(2|U'|))` so later rounds regain
    /// the full aggregate noise scale.
    ///
    /// # Errors
    ///
    /// Stops at the first failing instance and propagates its error.
    ///
    /// # Panics
    ///
    /// Panics if any instance's vote matrix shape disagrees with the
    /// session.
    pub fn run_batch<R: Rng + ?Sized>(
        &self,
        instances: &[Vec<Vec<f64>>],
        meter: Arc<Meter>,
        rng: &mut R,
    ) -> Result<Vec<SecureOutcome>, SmcError> {
        let total_users = self.keys.config().num_users;
        let resilient = self.resilient();
        let mut roster: Vec<usize> = (0..total_users).collect();
        let mut outcomes = Vec::with_capacity(instances.len());
        for votes in instances {
            assert_eq!(votes.len(), total_users, "one vote vector per user");
            let surviving_votes: Vec<Vec<f64>> = roster.iter().map(|&u| votes[u].clone()).collect();
            let out = self.run_round(&surviving_votes, &roster, Arc::clone(&meter), rng)?;
            if resilient {
                roster = out.health.survivors.clone();
            }
            outcomes.push(out);
        }
        Ok(outcomes)
    }

    /// Runs one query end to end over the full user set. `votes` holds
    /// each user's vote vector in vote units (one-hot or softmax).
    /// Traffic and timing are recorded into `meter`.
    ///
    /// # Errors
    ///
    /// Propagates protocol failures ([`SmcError`]), including the typed
    /// [`SmcError::QuorumLost`] abort of resilient rounds. A threshold
    /// rejection is *not* an error: it returns `label: None`.
    ///
    /// # Panics
    ///
    /// Panics if the vote matrix shape disagrees with the session, or if
    /// a server thread panics.
    pub fn run_instance<R: Rng + ?Sized>(
        &self,
        votes: &[Vec<f64>],
        meter: Arc<Meter>,
        rng: &mut R,
    ) -> Result<SecureOutcome, SmcError> {
        let roster: Vec<usize> = (0..self.keys.config().num_users).collect();
        self.run_round(votes, &roster, meter, rng)
    }

    /// Runs one query over an explicit `roster` of user ids — `votes[i]`
    /// is the vote vector of user `roster[i]`. [`Self::run_batch`] uses
    /// this to keep dropped users out of later rounds; the distributed
    /// noise each roster user draws is calibrated for `|roster|`
    /// participants, and so is the threshold `T = fraction·|roster|`.
    ///
    /// # Errors
    ///
    /// See [`Self::run_instance`].
    ///
    /// # Panics
    ///
    /// Panics if the vote matrix shape disagrees with the roster, if the
    /// roster is empty or not a strictly ascending list of known user
    /// ids, or if a partial roster is used without resilient mode.
    pub fn run_round<R: Rng + ?Sized>(
        &self,
        votes: &[Vec<f64>],
        roster: &[usize],
        meter: Arc<Meter>,
        rng: &mut R,
    ) -> Result<SecureOutcome, SmcError> {
        let prepared = self.prepare_round(votes, roster, rng)?;
        let fault_stats_before = meter.fault_stats();
        let mut net = self.build_network(&meter, self.faults.clone());
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);
        self.send_uploads(&mut net, &prepared)?;
        let round_id = self.audit_rounds.fetch_add(1, Ordering::Relaxed);
        let (done1, done2) = self.drive_servers(
            &mut s1,
            &mut s2,
            &prepared,
            RoundState::Start,
            RoundState::Start,
            (None, None),
            round_id,
            None,
        )?;
        Ok(self.finalize_round(&prepared, done1, done2, &meter, fault_stats_before, 0, Vec::new()))
    }

    /// The attached fault-injection plan, if any.
    pub(crate) fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The two server-side decryption/evaluation contexts, for callers
    /// that drive [`server1_advance`]/[`server2_advance`] step by step
    /// instead of through [`SecureEngine::drive_servers`] (the
    /// multi-session reactor).
    pub(crate) fn server_contexts(&self) -> (ServerContext, ServerContext) {
        (self.keys.server1(), self.keys.server2())
    }

    /// Claims the next audit round id from the engine's monotonic
    /// counter — one id per driven round, feeding the audit challenge
    /// schedule exactly as [`SecureEngine::run_round`] does.
    pub(crate) fn next_audit_round(&self) -> u64 {
        self.audit_rounds.fetch_add(1, Ordering::Relaxed)
    }

    /// The user phase, run once per *logical* round: shares, noise,
    /// threshold offsets and the six encrypted payloads per user are all
    /// drawn here. Crash-recovery attempts replay this prepared data
    /// verbatim — nothing is re-drawn, so every attempt reruns the same
    /// round and a recovered outcome can be bit-identical to an
    /// uninterrupted one.
    ///
    /// Randomness is consumed in the exact order the pre-decomposition
    /// engine did (per user: z1, z2, share split, then the six payload
    /// encryptions in upload order, and finally the two server seeds).
    pub(crate) fn prepare_round<R: Rng + ?Sized>(
        &self,
        votes: &[Vec<f64>],
        roster: &[usize],
        rng: &mut R,
    ) -> Result<PreparedRound, SmcError> {
        let total_users = self.keys.config().num_users;
        let num_classes = self.keys.config().num_classes;
        let num_users = roster.len();
        assert!(num_users > 0, "roster must not be empty");
        assert!(
            roster.windows(2).all(|w| w[0] < w[1]) && *roster.last().unwrap() < total_users,
            "roster must be strictly ascending user ids below {total_users}"
        );
        assert_eq!(votes.len(), num_users, "one vote vector per roster user");
        assert!(
            self.resilient() || roster.iter().copied().eq(0..total_users),
            "a partial roster requires resilient mode (set min_users or attach a fault plan)"
        );

        let threshold_scaled = scale_votes(self.consensus.threshold_votes(num_users));
        // Exact integer split of T across 2|U| share slots: the first |U|
        // are subtracted on the S1 side, the rest added on the S2 side.
        let offsets = split_evenly(threshold_scaled, 2 * num_users);
        let (off1, off2) = offsets.split_at(num_users);

        let user_ctx = self.keys.user();
        let domain = user_ctx.domain();
        let par = user_ctx.parallelism();
        let mut uploads: Vec<UserUpload> = Vec::with_capacity(num_users);
        let mut user_counts: Vec<Vec<i64>> = Vec::with_capacity(num_users);
        let mut user_z1: Vec<Vec<i64>> = Vec::with_capacity(num_users);
        let mut user_z2: Vec<Vec<i64>> = Vec::with_capacity(num_users);
        for (idx, (&u, vote)) in roster.iter().zip(votes).enumerate() {
            assert_eq!(vote.len(), num_classes, "vote arity for user {u}");
            let scaled = scale_vote_vector(vote);
            let z1 = draw_user_noise_shares(self.consensus.sigma1, num_users, num_classes, rng);
            let z2 = draw_user_noise_shares(self.consensus.sigma2, num_users, num_classes, rng);
            user_z1.push((0..num_classes).map(|k| z1.for_s1[k] + z1.for_s2[k]).collect());
            user_z2.push((0..num_classes).map(|k| z2.for_s1[k] + z2.for_s2[k]).collect());

            let as_i128: Vec<i128> = scaled.iter().map(|&v| v as i128).collect();
            user_counts.push(scaled);
            let (a, b) = domain.split_vec(&as_i128, rng);

            // Step 2 payloads.
            let thresh_a: Vec<i128> =
                (0..num_classes).map(|k| a[k] - off1[idx] as i128 + z1.for_s1[k] as i128).collect();
            let thresh_b: Vec<i128> =
                (0..num_classes).map(|k| off2[idx] as i128 - b[k] - z1.for_s2[k] as i128).collect();
            // Step 6 payloads.
            let noisy_a: Vec<i128> =
                (0..num_classes).map(|k| a[k] + z2.for_s1[k] as i128).collect();
            let noisy_b: Vec<i128> =
                (0..num_classes).map(|k| b[k] + z2.for_s2[k] as i128).collect();

            uploads.push(UserUpload {
                user: u,
                s1_votes: encrypt_share_vector(&a, user_ctx.pk2(), par, rng)?,
                s1_thresh: encrypt_share_vector(&thresh_a, user_ctx.pk2(), par, rng)?,
                s1_noisy: encrypt_share_vector(&noisy_a, user_ctx.pk2(), par, rng)?,
                s2_votes: encrypt_share_vector(&b, user_ctx.pk1(), par, rng)?,
                s2_thresh: encrypt_share_vector(&thresh_b, user_ctx.pk1(), par, rng)?,
                s2_noisy: encrypt_share_vector(&noisy_b, user_ctx.pk1(), par, rng)?,
            });
        }
        let seed1: u64 = rng.gen();
        let seed2: u64 = rng.gen();
        // The shard plan must be identical on both servers, so its seed is
        // a hashed mix of the two server seeds instead of a fresh draw —
        // the round's RNG stream stays identical to pre-shard builds, and
        // the mix does not linearly expose either private seed.
        let shard_seed = {
            let mut z = seed1 ^ seed2.rotate_left(32);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Ok(PreparedRound {
            roster: roster.to_vec(),
            num_classes,
            uploads,
            user_counts,
            user_z1,
            user_z2,
            offsets,
            seed1,
            seed2,
            shard_seed,
        })
    }

    /// Builds one attempt's network over the engine's transport backend
    /// (`plan` may differ from the engine's own on recovery attempts,
    /// where the supervisor strips the server crashes that already
    /// fired).
    pub(crate) fn build_network(&self, meter: &Arc<Meter>, plan: Option<FaultPlan>) -> Network {
        let mut builder = Network::builder(self.keys.config().num_users)
            .meter(Arc::clone(meter))
            .timeout(self.timeout)
            .backend(self.transport);
        if let Some(plan) = plan {
            builder = builder.faults(plan);
        }
        builder.build()
    }

    /// Injects the prepared uploads into a fresh network, in the same
    /// per-user, per-link order as the original engine — fresh networks
    /// restart each link's sequence numbers at 1, so fault decisions
    /// keyed on (from, to, step, seq) reproduce identically per attempt.
    pub(crate) fn send_uploads(
        &self,
        net: &mut Network,
        prepared: &PreparedRound,
    ) -> Result<(), SmcError> {
        for up in &prepared.uploads {
            let endpoint = net.take_endpoint(PartyId::User(up.user));
            endpoint.send(PartyId::Server1, Step::SecureSumVotes, &up.s1_votes)?;
            endpoint.send(PartyId::Server1, Step::SecureSumVotes, &up.s1_thresh)?;
            endpoint.send(PartyId::Server1, Step::SecureSumNoisy, &up.s1_noisy)?;
            endpoint.send(PartyId::Server2, Step::SecureSumVotes, &up.s2_votes)?;
            endpoint.send(PartyId::Server2, Step::SecureSumVotes, &up.s2_thresh)?;
            endpoint.send(PartyId::Server2, Step::SecureSumNoisy, &up.s2_noisy)?;
        }
        Ok(())
    }

    /// Runs both server threads from the given states to termination,
    /// snapshotting each completed step into `checkpoints` when attached.
    /// `audits` carries each side's restored audit material on recovery
    /// attempts; `round_id` feeds the audit challenge schedule.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn drive_servers(
        &self,
        s1: &mut Endpoint,
        s2: &mut Endpoint,
        prepared: &PreparedRound,
        state1: RoundState,
        state2: RoundState,
        audits: (Option<AuditCheckpoint>, Option<AuditCheckpoint>),
        round_id: u64,
        checkpoints: Option<(&dyn CheckpointStore, u64)>,
    ) -> Result<(RoundState, RoundState), SmcError> {
        let ctx1 = self.keys.server1();
        let ctx2 = self.keys.server2();
        let ranking = self.ranking;
        let quorum = if self.resilient() { Some(self.quorum()) } else { None };
        let roster = &prepared.roster;
        let num_classes = prepared.num_classes;
        let (seed1, seed2) = (prepared.seed1, prepared.seed2);
        let shard_seed = prepared.shard_seed;
        let policy = self.audit;
        let faults = self.faults.as_ref();
        let (audit1, audit2) = audits;
        let (r1, r2) = std::thread::scope(|scope| {
            let h1 = scope.spawn(move || {
                server_drive(
                    PartyId::Server1,
                    s1,
                    &ctx1,
                    roster,
                    num_classes,
                    seed1,
                    shard_seed,
                    ranking,
                    quorum,
                    state1,
                    checkpoints,
                    policy,
                    round_id,
                    audit1,
                    faults,
                )
            });
            let h2 = scope.spawn(move || {
                server_drive(
                    PartyId::Server2,
                    s2,
                    &ctx2,
                    roster,
                    num_classes,
                    seed2,
                    shard_seed,
                    ranking,
                    quorum,
                    state2,
                    checkpoints,
                    policy,
                    round_id,
                    audit2,
                    faults,
                )
            });
            (h1.join().expect("S1 thread panicked"), h2.join().expect("S2 thread panicked"))
        });
        // When one server fails mid-protocol the other times out waiting;
        // surface the root cause, not the timeout it induced. An audit
        // conviction outranks everything — the convicted side's own
        // error (usually the timeout its abort induced on the peer, or
        // a transport teardown) must never mask the verdict.
        match (r1, r2) {
            (Ok(d1), Ok(d2)) => Ok((d1, d2)),
            (Err(e @ SmcError::AuditFailure { .. }), _)
            | (_, Err(e @ SmcError::AuditFailure { .. })) => Err(e),
            (Err(SmcError::Transport(_)), Err(root)) => Err(root),
            (Err(root), _) => Err(root),
            (_, Err(root)) => Err(root),
        }
    }

    /// Cross-checks the two terminal states and assembles the outcome:
    /// witness aggregates over the sets actually counted, plus the
    /// round's fault and recovery history.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finalize_round(
        &self,
        prepared: &PreparedRound,
        done1: RoundState,
        done2: RoundState,
        meter: &Meter,
        fault_stats_before: FaultStats,
        resumptions: u64,
        resumed_from: Vec<Step>,
    ) -> SecureOutcome {
        let (
            RoundState::Done { label, survivors, noisy_survivors },
            RoundState::Done { label: label2, survivors: survivors2, noisy_survivors: noisy2 },
        ) = (done1, done2)
        else {
            panic!("drive_servers must return terminal states");
        };
        assert_eq!(label, label2, "servers must agree on the outcome");
        assert_eq!(survivors, survivors2, "servers must agree on the surviving set");
        assert_eq!(noisy_survivors, noisy2, "servers must agree on the step-6 surviving set");

        let roster = &prepared.roster;
        let num_users = roster.len();
        let num_classes = prepared.num_classes;
        let (off1, off2) = prepared.offsets.split_at(num_users);

        // ---- Witness and health over the sets actually counted. ----
        let pos = |user: usize| {
            roster.iter().position(|&r| r == user).expect("survivor must be on the roster")
        };
        let mut witness = SecureWitness {
            counts_scaled: vec![0i64; num_classes],
            z1_scaled: vec![0i64; num_classes],
            noisy_counts_scaled: vec![0i64; num_classes],
            z2_scaled: vec![0i64; num_classes],
            threshold_scaled: survivors.iter().map(|&u| off1[pos(u)] + off2[pos(u)]).sum(),
        };
        for &u in &survivors {
            let p = pos(u);
            for k in 0..num_classes {
                witness.counts_scaled[k] += prepared.user_counts[p][k];
                witness.z1_scaled[k] += prepared.user_z1[p][k];
            }
        }
        let z2_cohort = noisy_survivors.as_deref().unwrap_or(&survivors);
        for &u in z2_cohort {
            let p = pos(u);
            for k in 0..num_classes {
                witness.noisy_counts_scaled[k] += prepared.user_counts[p][k];
                witness.z2_scaled[k] += prepared.user_z2[p][k];
            }
        }

        let fault_stats = meter.fault_stats();
        let mut dropouts: Vec<(usize, Step)> = roster
            .iter()
            .filter(|u| !survivors.contains(u))
            .map(|&u| (u, Step::SecureSumVotes))
            .collect();
        if let Some(nv) = &noisy_survivors {
            dropouts.extend(
                survivors.iter().filter(|u| !nv.contains(u)).map(|&u| (u, Step::SecureSumNoisy)),
            );
        }
        let health = RoundHealth {
            intended_users: roster.to_vec(),
            realized_sigma1: smc::shard::recalibrate_sigma(
                self.consensus.sigma1,
                num_users,
                survivors.len(),
            ),
            realized_sigma2: noisy_survivors.as_ref().map(|nv| {
                smc::shard::recalibrate_sigma(self.consensus.sigma2, num_users, nv.len())
            }),
            survivors,
            noisy_survivors,
            dropouts,
            retries: fault_stats.retries - fault_stats_before.retries,
            timeouts: fault_stats.timeouts - fault_stats_before.timeouts,
            resumptions,
            resumed_from,
            audit_challenges: fault_stats.audit_challenges - fault_stats_before.audit_challenges,
        };
        SecureOutcome { label, witness, health }
    }
}

/// S1's full Alg. 5 run. Records per-step wall time (S2's work overlaps
/// this wall clock, matching how the paper reports per-step costs).
fn server1_rank<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    sequence: &[i128],
    step: Step,
    ranking: RankingStrategy,
    rng: &mut R,
) -> Result<usize, SmcError> {
    match ranking {
        RankingStrategy::Pairwise => server1_argmax_pairwise(endpoint, ctx, sequence, step, rng),
        RankingStrategy::Tournament => {
            server1_argmax_tournament(endpoint, ctx, sequence, step, rng)
        }
        RankingStrategy::Batched => server1_argmax_batched(endpoint, ctx, sequence, step, rng),
    }
}

fn server2_rank<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    sequence: &[i128],
    step: Step,
    ranking: RankingStrategy,
    rng: &mut R,
) -> Result<usize, SmcError> {
    match ranking {
        RankingStrategy::Pairwise => server2_argmax_pairwise(endpoint, ctx, sequence, step, rng),
        RankingStrategy::Tournament => {
            server2_argmax_tournament(endpoint, ctx, sequence, step, rng)
        }
        RankingStrategy::Batched => server2_argmax_batched(endpoint, ctx, sequence, step, rng),
    }
}

/// The aggregated vote vector, threshold vector and surviving user ids
/// of a step-2 collection.
type VotesThreshSurvivors = (Vec<Ciphertext>, Vec<Ciphertext>, Vec<usize>);

/// Step-2 collection for either server: strict (`quorum == None`, every
/// roster upload must arrive) or resilient (collect what arrives,
/// reconcile survivors with the peer per shard, enforce the quorum).
/// Both servers derive the identical shard plan from the round-shared
/// `shard_seed`, so the streaming folds and per-shard exchanges line up.
#[allow(clippy::too_many_arguments)]
fn collect_votes_and_thresh(
    endpoint: &mut Endpoint,
    roster: &[usize],
    num_classes: usize,
    peer_key: &paillier::PublicKey,
    peer_server: PartyId,
    quorum: Option<usize>,
    shard_seed: u64,
    shards: ShardConfig,
    par: &Parallelism,
) -> Result<VotesThreshSurvivors, SmcError> {
    let plan = ShardPlan::derive(shard_seed, roster, shards);
    match quorum {
        None => {
            let votes = aggregate_user_vectors_sharded(
                endpoint,
                Step::SecureSumVotes,
                &plan,
                num_classes,
                peer_key,
                par,
            )?;
            let thresh = aggregate_user_vectors_sharded(
                endpoint,
                Step::SecureSumVotes,
                &plan,
                num_classes,
                peer_key,
                par,
            )?;
            Ok((votes, thresh, roster.to_vec()))
        }
        Some(q) => {
            let mut agg = aggregate_surviving_vectors_sharded(
                endpoint,
                Step::SecureSumVotes,
                &plan,
                num_classes,
                2,
                peer_key,
                peer_server,
                q,
                par,
            )?;
            let thresh = agg.sums.pop().expect("two aggregated vectors");
            let votes = agg.sums.pop().expect("two aggregated vectors");
            Ok((votes, thresh, agg.survivors))
        }
    }
}

/// Step-6 collection for either server, over the step-2 survivors.
#[allow(clippy::too_many_arguments)]
fn collect_noisy(
    endpoint: &mut Endpoint,
    survivors: &[usize],
    num_classes: usize,
    peer_key: &paillier::PublicKey,
    peer_server: PartyId,
    quorum: Option<usize>,
    shard_seed: u64,
    shards: ShardConfig,
    par: &Parallelism,
) -> Result<(Vec<Ciphertext>, Vec<usize>), SmcError> {
    let plan = ShardPlan::derive(shard_seed, survivors, shards);
    match quorum {
        None => {
            let noisy = aggregate_user_vectors_sharded(
                endpoint,
                Step::SecureSumNoisy,
                &plan,
                num_classes,
                peer_key,
                par,
            )?;
            Ok((noisy, survivors.to_vec()))
        }
        Some(q) => {
            let mut agg = aggregate_surviving_vectors_sharded(
                endpoint,
                Step::SecureSumNoisy,
                &plan,
                num_classes,
                1,
                peer_key,
                peer_server,
                q,
                par,
            )?;
            let noisy = agg.sums.pop().expect("one aggregated vector");
            Ok((noisy, agg.survivors))
        }
    }
}

/// Derives the RNG seed for one protocol step from a server's root seed
/// (SplitMix64 of the seed and the step ordinal).
///
/// Each step draws from its own derived stream instead of one rolling
/// RNG: resuming the pipeline at step *k* then reproduces the exact
/// randomness the uninterrupted run would have used there, which is what
/// makes recovered rounds bit-identical. Crash recovery never needs to
/// checkpoint RNG *states* — only the root seeds, drawn once per round.
/// The audit layer commits to this seed before the step runs, so a
/// challenged server's draws can be replayed verbatim by its peer.
fn step_seed(root_seed: u64, step: Step) -> u64 {
    let mut z = root_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(step.ordinal()) + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Executes the single next step of S1's pipeline from `state`,
/// returning the state after it. S1 wraps every step in the meter's wall
/// clock (S2's overlapping work is covered by the same clock, matching
/// how the paper reports per-step costs).
#[allow(clippy::too_many_arguments)]
pub(crate) fn server1_advance(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    roster: &[usize],
    num_classes: usize,
    root_seed: u64,
    shard_seed: u64,
    ranking: RankingStrategy,
    quorum: Option<usize>,
    state: RoundState,
    audit: &mut AuditContext,
    faults: Option<&FaultPlan>,
) -> Result<RoundState, SmcError> {
    let meter = Arc::clone(endpoint.meter());
    let step = state.next_step().expect("cannot advance a terminal round state");
    let seed = step_seed(root_seed, step);
    let mut rng = StdRng::seed_from_u64(seed);
    let byz = faults.and_then(|p| p.byzantine_action(PartyId::Server1, step));
    Ok(match state {
        RoundState::Start => {
            // Step 2: aggregate the vote shares and threshold shares.
            let pk2 = ctx.peer_public().clone();
            let (votes, thresh, survivors) = meter.time(Step::SecureSumVotes, || {
                collect_votes_and_thresh(
                    endpoint,
                    roster,
                    num_classes,
                    &pk2,
                    PartyId::Server2,
                    quorum,
                    shard_seed,
                    ctx.config().shards,
                    ctx.parallelism(),
                )
            })?;
            RoundState::Summed { votes, thresh, survivors }
        }
        RoundState::Summed { votes, thresh, survivors } => {
            // Step 3: Blind-and-Permute over both vectors, one shared π.
            let mut tap = audit.tap(step, seed, byz);
            let bp = meter.time(Step::BlindPermute1, || {
                server1_blind_permute(
                    endpoint,
                    ctx,
                    &[votes, thresh],
                    Step::BlindPermute1,
                    &mut rng,
                    &mut tap,
                )
            })?;
            audit.complete(&tap);
            let [votes_seq, thresh_seq]: [Vec<i128>; 2] =
                bp.sequences.try_into().expect("two permuted sequences");
            RoundState::Permuted {
                votes_seq,
                thresh_seq,
                permutation: bp.own_permutation,
                survivors,
            }
        }
        RoundState::Permuted { votes_seq, thresh_seq, survivors, .. } => {
            // Step 4: ranking → permuted winner slot.
            let slot = meter.time(Step::CompareRank, || {
                server1_rank(endpoint, ctx, &votes_seq, Step::CompareRank, ranking, &mut rng)
            })?;
            RoundState::Ranked { slot, thresh_seq, survivors }
        }
        RoundState::Ranked { slot, thresh_seq, survivors } => {
            // Step 5: noisy threshold check at that slot.
            let passed = meter.time(Step::ThresholdCheck, || {
                server1_compare_geq(endpoint, ctx, thresh_seq[slot], Step::ThresholdCheck, &mut rng)
            })?;
            if passed {
                RoundState::Gated { survivors }
            } else {
                RoundState::Done { label: None, survivors, noisy_survivors: None }
            }
        }
        RoundState::Gated { survivors } => {
            // Step 6: aggregate the noisy vote shares over the survivors.
            let pk2 = ctx.peer_public().clone();
            let (noisy, noisy_survivors) = meter.time(Step::SecureSumNoisy, || {
                collect_noisy(
                    endpoint,
                    &survivors,
                    num_classes,
                    &pk2,
                    PartyId::Server2,
                    quorum,
                    shard_seed,
                    ctx.config().shards,
                    ctx.parallelism(),
                )
            })?;
            RoundState::SummedNoisy { noisy, survivors, noisy_survivors: Some(noisy_survivors) }
        }
        RoundState::SummedNoisy { noisy, survivors, noisy_survivors } => {
            // Step 7: second Blind-and-Permute, fresh π′.
            let mut tap = audit.tap(step, seed, byz);
            let bp = meter.time(Step::BlindPermute2, || {
                server1_blind_permute(
                    endpoint,
                    ctx,
                    &[noisy],
                    Step::BlindPermute2,
                    &mut rng,
                    &mut tap,
                )
            })?;
            audit.complete(&tap);
            let [noisy_seq]: [Vec<i128>; 1] =
                bp.sequences.try_into().expect("one permuted sequence");
            RoundState::PermutedNoisy {
                noisy_seq,
                permutation: bp.own_permutation,
                survivors,
                noisy_survivors,
            }
        }
        RoundState::PermutedNoisy { noisy_seq, permutation, survivors, noisy_survivors } => {
            // Step 8: rank the noisy votes (S2 drives restoration from
            // the same slot).
            let noisy_slot = meter.time(Step::CompareNoisyRank, || {
                server1_rank(endpoint, ctx, &noisy_seq, Step::CompareNoisyRank, ranking, &mut rng)
            })?;
            RoundState::RankedNoisy { noisy_slot, permutation, survivors, noisy_survivors }
        }
        RoundState::RankedNoisy { permutation, survivors, noisy_survivors, .. } => {
            // Step 9: restore the true label.
            let mut tap = audit.tap(step, seed, byz);
            let label = meter.time(Step::Restoration, || {
                server1_restore(endpoint, ctx, &permutation, Step::Restoration, &mut rng, &mut tap)
            })?;
            audit.complete(&tap);
            RoundState::Done { label: Some(label), survivors, noisy_survivors }
        }
        RoundState::Done { .. } => unreachable!("terminal state has no next step"),
    })
}

/// Executes the single next step of S2's pipeline (mirror of
/// [`server1_advance`], no timing records).
#[allow(clippy::too_many_arguments)]
pub(crate) fn server2_advance(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    roster: &[usize],
    num_classes: usize,
    root_seed: u64,
    shard_seed: u64,
    ranking: RankingStrategy,
    quorum: Option<usize>,
    state: RoundState,
    audit: &mut AuditContext,
    faults: Option<&FaultPlan>,
) -> Result<RoundState, SmcError> {
    let step = state.next_step().expect("cannot advance a terminal round state");
    let seed = step_seed(root_seed, step);
    let mut rng = StdRng::seed_from_u64(seed);
    let byz = faults.and_then(|p| p.byzantine_action(PartyId::Server2, step));
    Ok(match state {
        RoundState::Start => {
            let pk1 = ctx.peer_public().clone();
            let (votes, thresh, survivors) = collect_votes_and_thresh(
                endpoint,
                roster,
                num_classes,
                &pk1,
                PartyId::Server1,
                quorum,
                shard_seed,
                ctx.config().shards,
                ctx.parallelism(),
            )?;
            RoundState::Summed { votes, thresh, survivors }
        }
        RoundState::Summed { votes, thresh, survivors } => {
            let mut tap = audit.tap(step, seed, byz);
            let bp = server2_blind_permute(
                endpoint,
                ctx,
                &[votes, thresh],
                Step::BlindPermute1,
                &mut rng,
                &mut tap,
            )?;
            audit.complete(&tap);
            let [votes_seq, thresh_seq]: [Vec<i128>; 2] =
                bp.sequences.try_into().expect("two permuted sequences");
            RoundState::Permuted {
                votes_seq,
                thresh_seq,
                permutation: bp.own_permutation,
                survivors,
            }
        }
        RoundState::Permuted { votes_seq, thresh_seq, survivors, .. } => {
            let slot =
                server2_rank(endpoint, ctx, &votes_seq, Step::CompareRank, ranking, &mut rng)?;
            RoundState::Ranked { slot, thresh_seq, survivors }
        }
        RoundState::Ranked { slot, thresh_seq, survivors } => {
            let passed = server2_compare_geq(
                endpoint,
                ctx,
                thresh_seq[slot],
                Step::ThresholdCheck,
                &mut rng,
            )?;
            if passed {
                RoundState::Gated { survivors }
            } else {
                RoundState::Done { label: None, survivors, noisy_survivors: None }
            }
        }
        RoundState::Gated { survivors } => {
            let pk1 = ctx.peer_public().clone();
            let (noisy, noisy_survivors) = collect_noisy(
                endpoint,
                &survivors,
                num_classes,
                &pk1,
                PartyId::Server1,
                quorum,
                shard_seed,
                ctx.config().shards,
                ctx.parallelism(),
            )?;
            RoundState::SummedNoisy { noisy, survivors, noisy_survivors: Some(noisy_survivors) }
        }
        RoundState::SummedNoisy { noisy, survivors, noisy_survivors } => {
            let mut tap = audit.tap(step, seed, byz);
            let bp = server2_blind_permute(
                endpoint,
                ctx,
                &[noisy],
                Step::BlindPermute2,
                &mut rng,
                &mut tap,
            )?;
            audit.complete(&tap);
            let [noisy_seq]: [Vec<i128>; 1] =
                bp.sequences.try_into().expect("one permuted sequence");
            RoundState::PermutedNoisy {
                noisy_seq,
                permutation: bp.own_permutation,
                survivors,
                noisy_survivors,
            }
        }
        RoundState::PermutedNoisy { noisy_seq, permutation, survivors, noisy_survivors } => {
            let noisy_slot =
                server2_rank(endpoint, ctx, &noisy_seq, Step::CompareNoisyRank, ranking, &mut rng)?;
            RoundState::RankedNoisy { noisy_slot, permutation, survivors, noisy_survivors }
        }
        RoundState::RankedNoisy { noisy_slot, permutation, survivors, noisy_survivors } => {
            let mut tap = audit.tap(step, seed, byz);
            let label = server2_restore(
                endpoint,
                ctx,
                &permutation,
                noisy_slot,
                Step::Restoration,
                &mut rng,
                &mut tap,
            )?;
            audit.complete(&tap);
            RoundState::Done { label: Some(label), survivors, noisy_survivors }
        }
        RoundState::Done { .. } => unreachable!("terminal state has no next step"),
    })
}

/// Runs one server from `state` to a terminal state, snapshotting after
/// every completed step when a checkpoint store is attached. A resumed
/// server passes its restored state here and re-enters the pipeline at
/// exactly the step the snapshot pair agrees on.
#[allow(clippy::too_many_arguments)]
fn server_drive(
    side: PartyId,
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    roster: &[usize],
    num_classes: usize,
    root_seed: u64,
    shard_seed: u64,
    ranking: RankingStrategy,
    quorum: Option<usize>,
    mut state: RoundState,
    checkpoints: Option<(&dyn CheckpointStore, u64)>,
    audit_policy: Option<AuditPolicy>,
    round_id: u64,
    restored_audit: Option<AuditCheckpoint>,
    faults: Option<&FaultPlan>,
) -> Result<RoundState, SmcError> {
    let mut audit = match restored_audit {
        Some(ckpt) => AuditContext::restore(audit_policy, round_id, side, ckpt),
        None => AuditContext::new(audit_policy, round_id, side),
    };
    while !state.is_terminal() {
        state = match side {
            PartyId::Server1 => server1_advance(
                endpoint,
                ctx,
                roster,
                num_classes,
                root_seed,
                shard_seed,
                ranking,
                quorum,
                state,
                &mut audit,
                faults,
            )?,
            PartyId::Server2 => server2_advance(
                endpoint,
                ctx,
                roster,
                num_classes,
                root_seed,
                shard_seed,
                ranking,
                quorum,
                state,
                &mut audit,
                faults,
            )?,
            PartyId::User(_) => unreachable!("only servers drive the pipeline"),
        };
        if let Some((store, round)) = checkpoints {
            let image = CheckpointImage {
                state: state.clone(),
                audit: audit_policy.is_some().then(|| audit.checkpoint()),
            };
            store
                .save(round, side, state.completed_step(), &image.to_bytes())
                .expect("checkpoint store failed while saving a snapshot");
            endpoint.meter().record_fault(FaultEvent::CheckpointSaved);
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::threshold_decision_scaled;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    /// Shared small-parameter engine: keygen dominates otherwise.
    fn engine() -> &'static SecureEngine {
        static ENGINE: OnceLock<SecureEngine> = OnceLock::new();
        ENGINE.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(2024);
            SecureEngine::new(
                SessionConfig::test(4, 3),
                ConsensusConfig::paper_default(1e-6, 1e-6),
                &mut rng,
            )
        })
    }

    fn onehot(k: usize) -> Vec<f64> {
        let mut v = vec![0.0; 3];
        v[k] = 1.0;
        v
    }

    #[test]
    fn unanimous_vote_released() {
        let mut rng = StdRng::seed_from_u64(1);
        let votes: Vec<Vec<f64>> = (0..4).map(|_| onehot(1)).collect();
        let out = engine().run_instance(&votes, Meter::new(), &mut rng).unwrap();
        assert_eq!(out.label, Some(1));
        assert_eq!(out.witness.counts_scaled[1], 4 * 65536);
        // A clean strict round: everyone survived, noise at full scale.
        assert!(out.health.is_clean());
        assert_eq!(out.health.survivors, vec![0, 1, 2, 3]);
        assert_eq!(out.health.noisy_survivors.as_deref(), Some(&[0, 1, 2, 3][..]));
        assert_eq!(out.health.realized_sigma1, 1e-6);
        assert_eq!(out.health.realized_sigma2, Some(1e-6));
        assert_eq!(out.witness.noisy_counts_scaled, out.witness.counts_scaled);
    }

    #[test]
    fn split_vote_rejected_at_threshold() {
        let mut rng = StdRng::seed_from_u64(2);
        // 2/1/1 split over 4 users: top vote 2 < T = 2.4.
        let votes = vec![onehot(0), onehot(0), onehot(1), onehot(2)];
        let out = engine().run_instance(&votes, Meter::new(), &mut rng).unwrap();
        assert_eq!(out.label, None);
        // Rejected rounds never run step 6: no realized argmax noise, and
        // the accountant only charges the Sparse Vector test.
        assert_eq!(out.health.noisy_survivors, None);
        assert_eq!(out.health.realized_sigma2, None);
        let rejected = out.health.charged_rdp().to_epsilon(1e-6);
        let released = dp::rdp::LinearRdp::sparse_vector(1e-6)
            .compose(&dp::rdp::LinearRdp::report_noisy_max(1e-6))
            .to_epsilon(1e-6);
        assert!(rejected < released, "a rejected round must charge less than a release");
    }

    #[test]
    fn secure_path_matches_clear_decision_function() {
        // Theorem 3 pinned by test: the secure label equals the decision
        // function applied to the witness aggregates.
        let mut rng = StdRng::seed_from_u64(3);
        let vote_sets = [
            vec![onehot(0), onehot(0), onehot(0), onehot(2)],
            vec![onehot(2), onehot(2), onehot(2), onehot(2)],
            vec![onehot(0), onehot(1), onehot(1), onehot(1)],
            vec![
                vec![0.5, 0.25, 0.25],
                vec![0.6, 0.2, 0.2],
                vec![0.7, 0.2, 0.1],
                vec![0.9, 0.05, 0.05],
            ],
        ];
        for votes in vote_sets {
            let out = engine().run_instance(&votes, Meter::new(), &mut rng).unwrap();
            let expect = threshold_decision_scaled(
                &out.witness.counts_scaled,
                &out.witness.z1_scaled,
                &out.witness.z2_scaled,
                out.witness.threshold_scaled,
            );
            assert_eq!(out.label, expect, "votes {votes:?}");
        }
    }

    #[test]
    fn per_step_traffic_and_time_recorded() {
        let mut rng = StdRng::seed_from_u64(4);
        let votes: Vec<Vec<f64>> = (0..4).map(|_| onehot(0)).collect();
        let meter = Meter::new();
        let out = engine().run_instance(&votes, Arc::clone(&meter), &mut rng).unwrap();
        assert_eq!(out.label, Some(0));
        let report = meter.report();
        for step in [
            Step::SecureSumVotes,
            Step::BlindPermute1,
            Step::CompareRank,
            Step::ThresholdCheck,
            Step::SecureSumNoisy,
            Step::BlindPermute2,
            Step::CompareNoisyRank,
            Step::Restoration,
        ] {
            assert!(report.step_bytes(step) > 0, "no traffic recorded for {step}");
        }
        assert!(report.step_time(Step::CompareRank) > std::time::Duration::ZERO);
        // The ranking step compares K(K−1)/2 pairs vs 1 threshold compare.
        assert!(
            report.step_bytes(Step::CompareRank) > report.step_bytes(Step::ThresholdCheck),
            "pairwise ranking must dominate the single threshold check"
        );
    }

    #[test]
    fn rejected_queries_skip_late_steps() {
        let mut rng = StdRng::seed_from_u64(5);
        let votes = vec![onehot(0), onehot(1), onehot(2), onehot(0)];
        let meter = Meter::new();
        let out = engine().run_instance(&votes, Arc::clone(&meter), &mut rng).unwrap();
        assert_eq!(out.label, None);
        let report = meter.report();
        // Steps 7-9 never run on a rejection; step 6 shares were sent by
        // users but never aggregated into server traffic beyond that.
        assert_eq!(report.step_bytes(Step::BlindPermute2), 0);
        assert_eq!(report.step_bytes(Step::Restoration), 0);
    }

    #[test]
    fn batched_ranking_matches_decision_function() {
        let mut rng = StdRng::seed_from_u64(7);
        let batched = SecureEngine::with_keys(
            SessionKeys::generate(SessionConfig::test(4, 3), &mut rng),
            ConsensusConfig::paper_default(1e-6, 1e-6),
        )
        .with_ranking(RankingStrategy::Batched);
        for votes in [
            vec![onehot(2), onehot(2), onehot(2), onehot(0)],
            vec![onehot(1), onehot(0), onehot(1), onehot(1)],
        ] {
            let out = batched.run_instance(&votes, Meter::new(), &mut rng).unwrap();
            let expect = threshold_decision_scaled(
                &out.witness.counts_scaled,
                &out.witness.z1_scaled,
                &out.witness.z2_scaled,
                out.witness.threshold_scaled,
            );
            assert_eq!(out.label, expect, "batched ranking, votes {votes:?}");
        }
    }

    #[test]
    fn batched_ranking_uses_fewer_messages() {
        let mut rng = StdRng::seed_from_u64(8);
        let keys = SessionKeys::generate(SessionConfig::test(4, 3), &mut rng);
        let votes: Vec<Vec<f64>> = (0..4).map(|_| onehot(1)).collect();
        let run_with = |ranking: RankingStrategy, rng: &mut StdRng| {
            let engine = SecureEngine::with_keys(
                SessionKeys::generate(SessionConfig::test(4, 3), rng),
                ConsensusConfig::paper_default(1e-6, 1e-6),
            )
            .with_ranking(ranking);
            let meter = Meter::new();
            engine.run_instance(&votes, Arc::clone(&meter), rng).unwrap();
            meter
                .report()
                .link_stats(Step::CompareRank, transport::LinkKind::ServerToServer)
                .messages
        };
        let _ = keys;
        let sequential = run_with(RankingStrategy::Pairwise, &mut rng);
        let batched = run_with(RankingStrategy::Batched, &mut rng);
        assert_eq!(batched, 3, "batched ranking is 3 messages");
        assert!(sequential > batched, "{sequential} vs {batched}");
    }

    #[test]
    fn noise_changes_released_label_with_large_sigma2() {
        // With σ2 comparable to the margin the noisy winner sometimes
        // differs from the true winner — that is the DP mechanism working.
        let mut rng = StdRng::seed_from_u64(6);
        let noisy_engine = SecureEngine::with_keys(
            SessionKeys::generate(SessionConfig::test(4, 3), &mut rng),
            ConsensusConfig::paper_default(1e-6, 8.0),
        );
        let votes = vec![onehot(0), onehot(0), onehot(0), onehot(1)];
        let mut flips = 0;
        for _ in 0..12 {
            let out = noisy_engine.run_instance(&votes, Meter::new(), &mut rng).unwrap();
            // Threshold noise is tiny, so the gate always passes (3 ≥ 2.4).
            let label = out.label.expect("gate passes");
            let expect = threshold_decision_scaled(
                &out.witness.counts_scaled,
                &out.witness.z1_scaled,
                &out.witness.z2_scaled,
                out.witness.threshold_scaled,
            );
            assert_eq!(Some(label), expect, "secure must track the noisy decision");
            if label != 0 {
                flips += 1;
            }
        }
        assert!(flips > 0, "σ2 = 8 over a 2-vote margin must flip sometimes");
    }
}
