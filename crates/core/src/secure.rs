//! The full secure execution of Alg. 5 over real channels.
//!
//! One [`SecureEngine::run_instance`] call performs, for a single query
//! instance:
//!
//! 1. **Setup** — each user splits its scaled vote vector into additive
//!    shares, draws distributed noise shares, and embeds its slice of the
//!    threshold (`T/(2|U|)` per share side, split exactly);
//! 2. **Secure sum (step 2)** — users upload `E_pk2[a^u]`,
//!    `E_pk2[a^u − T/(2|U|) + z₁ₐ^u]` to S1 and the mirrored vectors to
//!    S2; servers aggregate homomorphically;
//! 3. **Blind-and-Permute (step 3)** — both aggregated vectors pass
//!    through Alg. 2 under one shared hidden permutation `π`;
//! 4. **Secure comparison (step 4)** — pairwise DGK ranking finds the
//!    permuted winner slot `π(i*)`;
//! 5. **Threshold check (step 5)** — one DGK comparison of the two
//!    threshold sequences at `π(i*)` decides
//!    `c_{i*} + N(0, σ₁²) ≥ T`; on failure both servers output `⊥`;
//! 6. **Secure sum (step 6)** — the noisy vote shares
//!    `a^u + z₂ₐ^u` / `b^u + z₂ᵦ^u` are aggregated;
//! 7. **Blind-and-Permute (step 7)** — under a fresh permutation `π′`;
//! 8. **Secure comparison (step 8)** — pairwise ranking of the noisy
//!    votes finds `π′(ĩ*)`;
//! 9. **Restoration (step 9)** — Alg. 3 recovers and publishes `ĩ*`.
//!
//! The engine runs users up-front (they are non-interactive senders) and
//! the two servers on real threads. Every message is metered per step,
//! and S1's thread records per-step wall time — together regenerating
//! Tables I and II.
//!
//! # Failure model
//!
//! By default the protocol is strict: any lost user upload fails the
//! round with a transport error. Configuring a quorum
//! ([`ConsensusConfig::with_min_users`]) or attaching a
//! [`FaultPlan`](transport::FaultPlan) switches the engine to
//! *dropout-resilient* rounds: the servers collect whatever arrives
//! within the round deadline, reconcile their surviving sets over the
//! server↔server link, and either continue over `U' ⊆ U` or abort with
//! the typed [`SmcError::QuorumLost`]. Every outcome carries a
//! [`RoundHealth`] record of who survived, who dropped at which step,
//! and the noise scale actually realized (see `DESIGN.md`, "Failure
//! model").

use std::sync::Arc;

use paillier::Ciphertext;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smc::argmax::{
    server1_argmax_pairwise, server1_argmax_tournament, server2_argmax_pairwise,
    server2_argmax_tournament,
};
use smc::batch::{server1_argmax_batched, server2_argmax_batched};
use smc::blind_permute::{server1_blind_permute, server2_blind_permute};
use smc::compare::{server1_compare_geq, server2_compare_geq};
use smc::restoration::{server1_restore, server2_restore};
use smc::secure_sum::{
    aggregate_surviving_vectors, aggregate_user_vectors, send_share_to_server1,
    send_share_to_server2,
};
use smc::{Parallelism, ServerContext, SessionConfig, SessionKeys, SmcError};
use transport::{Endpoint, FaultPlan, Meter, Network, PartyId, Step, TimeoutPolicy};

use crate::clear::draw_user_noise_shares;
use crate::config::{scale_vote_vector, scale_votes, split_evenly, ConsensusConfig};

/// Aggregate quantities the simulation driver observed while playing all
/// users — the ground truth the secure output can be checked against
/// (Theorem 3 correctness). A real deployment has no such observer; this
/// exists because the harness legitimately controls every party.
///
/// Under dropout-resilient rounds the aggregates cover exactly the users
/// the servers actually counted: `counts_scaled`/`z1_scaled` sum over the
/// step-2 survivors `U'`, `noisy_counts_scaled`/`z2_scaled` over the
/// step-6 survivors `U'' ⊆ U'`, and `threshold_scaled` is the *effective*
/// threshold embedded in the surviving shares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureWitness {
    /// Exact scaled vote counts over the step-2 survivors.
    pub counts_scaled: Vec<i64>,
    /// Aggregated scaled threshold noise over the step-2 survivors.
    pub z1_scaled: Vec<i64>,
    /// Exact scaled vote counts over the step-6 survivors (equals
    /// `counts_scaled` whenever no user dropped between steps 2 and 6).
    pub noisy_counts_scaled: Vec<i64>,
    /// Aggregated scaled argmax noise over the step-6 survivors.
    pub z2_scaled: Vec<i64>,
    /// The effective scaled threshold the surviving shares embed.
    pub threshold_scaled: i64,
}

/// Structured fault history of one protocol round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundHealth {
    /// The roster the round was launched with.
    pub intended_users: Vec<usize>,
    /// Users whose step-2 upload reached both servers (`U'`).
    pub survivors: Vec<usize>,
    /// Users whose step-6 upload reached both servers (`U'' ⊆ U'`);
    /// `None` when the round never reached step 6 (threshold rejection).
    pub noisy_survivors: Option<Vec<usize>>,
    /// Users lost during the round, each with the step it first failed.
    pub dropouts: Vec<(usize, Step)>,
    /// Extended receive windows this round consumed.
    pub retries: u64,
    /// Receives that exhausted every retry window.
    pub timeouts: u64,
    /// The threshold-noise scale actually realized: the users drew
    /// shares calibrated for `|U|` participants, so the `|U'|` surviving
    /// shares sum to `N(0, σ₁²·|U'|/|U|)`.
    pub realized_sigma1: f64,
    /// The argmax-noise scale actually realized over `U''`; `None` when
    /// step 6 never ran.
    pub realized_sigma2: Option<f64>,
}

impl RoundHealth {
    /// `true` when every intended user survived and no receive needed a
    /// retry — the round ran exactly as the strict protocol would.
    pub fn is_clean(&self) -> bool {
        self.dropouts.is_empty() && self.retries == 0 && self.timeouts == 0
    }

    /// The RDP cost of the round *actually executed*: the Sparse Vector
    /// test at the realized `σ₁`, composed with Report Noisy Max at the
    /// realized `σ₂` only if the release step ran. Dropouts shrink the
    /// realized noise, so a faulty round charges **more** privacy budget
    /// than a clean one — the accountant must never assume the
    /// calibrated scales.
    ///
    /// # Panics
    ///
    /// Panics if a realized scale is zero (infinite privacy loss).
    pub fn charged_rdp(&self) -> dp::rdp::LinearRdp {
        let svt = dp::rdp::LinearRdp::sparse_vector(self.realized_sigma1);
        match self.realized_sigma2 {
            Some(s2) => svt.compose(&dp::rdp::LinearRdp::report_noisy_max(s2)),
            None => svt,
        }
    }
}

/// Output of one secure consensus query.
#[derive(Debug, Clone, PartialEq)]
pub struct SecureOutcome {
    /// The released label (`None` = `⊥`, threshold failed).
    pub label: Option<usize>,
    /// Driver-side ground truth for verification.
    pub witness: SecureWitness,
    /// Fault history: survivors, dropouts, retries, realized noise.
    pub health: RoundHealth,
}

/// How the servers rank the permuted sequences in steps 4 and 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankingStrategy {
    /// The paper's sequential all-pairs comparisons — `K(K−1)/2`
    /// three-message dialogues.
    #[default]
    Pairwise,
    /// Linear-scan champion tournament — `K−1` comparisons.
    Tournament,
    /// All pairs batched into three messages (same computation, minimal
    /// rounds; see `smc::batch`).
    Batched,
}

/// A provisioned secure deployment: session keys plus consensus
/// parameters.
pub struct SecureEngine {
    keys: SessionKeys,
    consensus: ConsensusConfig,
    ranking: RankingStrategy,
    timeout: TimeoutPolicy,
    faults: Option<FaultPlan>,
}

impl std::fmt::Debug for SecureEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SecureEngine({:?})", self.keys.config())
    }
}

/// What one server learned from a full protocol run: the label plus the
/// surviving sets its aggregations actually covered.
struct ServerReport {
    label: Option<usize>,
    survivors: Vec<usize>,
    noisy_survivors: Option<Vec<usize>>,
}

impl SecureEngine {
    /// Generates key material for `session` and binds the consensus
    /// parameters.
    pub fn new<R: Rng + ?Sized>(
        session: SessionConfig,
        consensus: ConsensusConfig,
        rng: &mut R,
    ) -> Self {
        Self::with_keys(SessionKeys::generate(session, rng), consensus)
    }

    /// Builds an engine from pre-generated keys. The keys' per-modulus
    /// exponentiation caches are warmed here so deserialized or
    /// hand-constructed keys start protocol rounds at full speed (keys
    /// from [`SessionKeys::generate`] arrive pre-warmed; the call is
    /// idempotent).
    pub fn with_keys(keys: SessionKeys, consensus: ConsensusConfig) -> Self {
        keys.precompute();
        SecureEngine {
            keys,
            consensus,
            ranking: RankingStrategy::default(),
            timeout: TimeoutPolicy::default(),
            faults: None,
        }
    }

    /// Selects the ranking strategy for steps 4 and 8.
    #[must_use]
    pub fn with_ranking(mut self, ranking: RankingStrategy) -> Self {
        self.ranking = ranking;
        self
    }

    /// Sets the per-receive deadline/retry policy every round's network
    /// is built with (the default waits 120 s with no retries).
    #[must_use]
    pub fn with_timeout(mut self, timeout: TimeoutPolicy) -> Self {
        self.timeout = timeout;
        self
    }

    /// Attaches a deterministic fault-injection plan to every round's
    /// network, and switches the engine to dropout-resilient rounds.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the data-parallelism config every party in every round uses
    /// for its crypto hot loops (Paillier batch encryption, per-label
    /// aggregation/masking, per-bit DGK witnesses, pairwise compare
    /// fan-out). Defaults to sequential. Protocol transcripts and
    /// outcomes are bit-identical for every setting — parallel loops
    /// derive per-item RNG streams from the same root draws the
    /// sequential path uses (see the `parallel` crate).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.keys.set_parallelism(parallelism);
        self
    }

    /// The configured data-parallelism.
    pub fn parallelism(&self) -> Parallelism {
        self.keys.parallelism()
    }

    /// The configured ranking strategy.
    pub fn ranking(&self) -> RankingStrategy {
        self.ranking
    }

    /// The session configuration.
    pub fn session_config(&self) -> &SessionConfig {
        self.keys.config()
    }

    /// The consensus configuration.
    pub fn consensus_config(&self) -> &ConsensusConfig {
        &self.consensus
    }

    /// Whether rounds run dropout-resilient (quorum configured or faults
    /// injected) instead of strict.
    pub fn resilient(&self) -> bool {
        self.faults.is_some() || self.consensus.min_users.is_some()
    }

    /// The quorum resilient rounds enforce: the configured `min_users`,
    /// or 1 when resilience was triggered by a fault plan alone.
    fn quorum(&self) -> usize {
        self.consensus.min_users.unwrap_or(1)
    }

    /// Runs a batch of queries sequentially, sharing the key material and
    /// meter — how the cost-table binaries drive multi-instance runs.
    ///
    /// In resilient mode the surviving roster carries across instances:
    /// a user that dropped out of round `k` is not waited for in round
    /// `k+1`, and the remaining users draw their distributed noise
    /// shares recalibrated to `N(0, σ²/(2|U'|))` so later rounds regain
    /// the full aggregate noise scale.
    ///
    /// # Errors
    ///
    /// Stops at the first failing instance and propagates its error.
    ///
    /// # Panics
    ///
    /// Panics if any instance's vote matrix shape disagrees with the
    /// session.
    pub fn run_batch<R: Rng + ?Sized>(
        &self,
        instances: &[Vec<Vec<f64>>],
        meter: Arc<Meter>,
        rng: &mut R,
    ) -> Result<Vec<SecureOutcome>, SmcError> {
        let total_users = self.keys.config().num_users;
        let resilient = self.resilient();
        let mut roster: Vec<usize> = (0..total_users).collect();
        let mut outcomes = Vec::with_capacity(instances.len());
        for votes in instances {
            assert_eq!(votes.len(), total_users, "one vote vector per user");
            let surviving_votes: Vec<Vec<f64>> = roster.iter().map(|&u| votes[u].clone()).collect();
            let out = self.run_round(&surviving_votes, &roster, Arc::clone(&meter), rng)?;
            if resilient {
                roster = out.health.survivors.clone();
            }
            outcomes.push(out);
        }
        Ok(outcomes)
    }

    /// Runs one query end to end over the full user set. `votes` holds
    /// each user's vote vector in vote units (one-hot or softmax).
    /// Traffic and timing are recorded into `meter`.
    ///
    /// # Errors
    ///
    /// Propagates protocol failures ([`SmcError`]), including the typed
    /// [`SmcError::QuorumLost`] abort of resilient rounds. A threshold
    /// rejection is *not* an error: it returns `label: None`.
    ///
    /// # Panics
    ///
    /// Panics if the vote matrix shape disagrees with the session, or if
    /// a server thread panics.
    pub fn run_instance<R: Rng + ?Sized>(
        &self,
        votes: &[Vec<f64>],
        meter: Arc<Meter>,
        rng: &mut R,
    ) -> Result<SecureOutcome, SmcError> {
        let roster: Vec<usize> = (0..self.keys.config().num_users).collect();
        self.run_round(votes, &roster, meter, rng)
    }

    /// Runs one query over an explicit `roster` of user ids — `votes[i]`
    /// is the vote vector of user `roster[i]`. [`Self::run_batch`] uses
    /// this to keep dropped users out of later rounds; the distributed
    /// noise each roster user draws is calibrated for `|roster|`
    /// participants, and so is the threshold `T = fraction·|roster|`.
    ///
    /// # Errors
    ///
    /// See [`Self::run_instance`].
    ///
    /// # Panics
    ///
    /// Panics if the vote matrix shape disagrees with the roster, if the
    /// roster is empty or not a strictly ascending list of known user
    /// ids, or if a partial roster is used without resilient mode.
    pub fn run_round<R: Rng + ?Sized>(
        &self,
        votes: &[Vec<f64>],
        roster: &[usize],
        meter: Arc<Meter>,
        rng: &mut R,
    ) -> Result<SecureOutcome, SmcError> {
        let total_users = self.keys.config().num_users;
        let num_classes = self.keys.config().num_classes;
        let num_users = roster.len();
        assert!(num_users > 0, "roster must not be empty");
        assert!(
            roster.windows(2).all(|w| w[0] < w[1]) && *roster.last().unwrap() < total_users,
            "roster must be strictly ascending user ids below {total_users}"
        );
        assert_eq!(votes.len(), num_users, "one vote vector per roster user");
        let mode: Option<usize> = if self.resilient() { Some(self.quorum()) } else { None };
        assert!(
            mode.is_some() || roster.iter().copied().eq(0..total_users),
            "a partial roster requires resilient mode (set min_users or attach a fault plan)"
        );

        let threshold_scaled = scale_votes(self.consensus.threshold_votes(num_users));
        // Exact integer split of T across 2|U| share slots: the first |U|
        // are subtracted on the S1 side, the rest added on the S2 side.
        let offsets = split_evenly(threshold_scaled, 2 * num_users);
        let (off1, off2) = offsets.split_at(num_users);

        let fault_stats_before = meter.fault_stats();
        let mut builder =
            Network::builder(total_users).meter(Arc::clone(&meter)).timeout(self.timeout);
        if let Some(plan) = &self.faults {
            builder = builder.faults(plan.clone());
        }
        let mut net = builder.build();
        let mut s1_endpoint = net.take_endpoint(PartyId::Server1);
        let mut s2_endpoint = net.take_endpoint(PartyId::Server2);
        let user_ctx = self.keys.user();
        let domain = user_ctx.domain();

        // ---- User phase: share, add noise, send. ----
        // Contributions are kept per user: which ones enter the witness
        // aggregates depends on who the servers end up counting.
        let mut user_counts: Vec<Vec<i64>> = Vec::with_capacity(num_users);
        let mut user_z1: Vec<Vec<i64>> = Vec::with_capacity(num_users);
        let mut user_z2: Vec<Vec<i64>> = Vec::with_capacity(num_users);
        for (idx, (&u, vote)) in roster.iter().zip(votes).enumerate() {
            assert_eq!(vote.len(), num_classes, "vote arity for user {u}");
            let endpoint = net.take_endpoint(PartyId::User(u));
            let scaled = scale_vote_vector(vote);
            let z1 = draw_user_noise_shares(self.consensus.sigma1, num_users, num_classes, rng);
            let z2 = draw_user_noise_shares(self.consensus.sigma2, num_users, num_classes, rng);
            user_z1.push((0..num_classes).map(|k| z1.for_s1[k] + z1.for_s2[k]).collect());
            user_z2.push((0..num_classes).map(|k| z2.for_s1[k] + z2.for_s2[k]).collect());

            let as_i128: Vec<i128> = scaled.iter().map(|&v| v as i128).collect();
            user_counts.push(scaled);
            let (a, b) = domain.split_vec(&as_i128, rng);

            // Step 2 payloads.
            let thresh_a: Vec<i128> =
                (0..num_classes).map(|k| a[k] - off1[idx] as i128 + z1.for_s1[k] as i128).collect();
            let thresh_b: Vec<i128> =
                (0..num_classes).map(|k| off2[idx] as i128 - b[k] - z1.for_s2[k] as i128).collect();
            // Step 6 payloads.
            let noisy_a: Vec<i128> =
                (0..num_classes).map(|k| a[k] + z2.for_s1[k] as i128).collect();
            let noisy_b: Vec<i128> =
                (0..num_classes).map(|k| b[k] + z2.for_s2[k] as i128).collect();

            send_share_to_server1(&endpoint, &user_ctx, Step::SecureSumVotes, &a, rng)?;
            send_share_to_server1(&endpoint, &user_ctx, Step::SecureSumVotes, &thresh_a, rng)?;
            send_share_to_server1(&endpoint, &user_ctx, Step::SecureSumNoisy, &noisy_a, rng)?;
            send_share_to_server2(&endpoint, &user_ctx, Step::SecureSumVotes, &b, rng)?;
            send_share_to_server2(&endpoint, &user_ctx, Step::SecureSumVotes, &thresh_b, rng)?;
            send_share_to_server2(&endpoint, &user_ctx, Step::SecureSumNoisy, &noisy_b, rng)?;
        }

        // ---- Server phase: two real threads. ----
        let ctx1 = self.keys.server1();
        let ctx2 = self.keys.server2();
        let seed1: u64 = rng.gen();
        let seed2: u64 = rng.gen();
        let ranking = self.ranking;
        let (r1, r2) = std::thread::scope(|scope| {
            let h1 = scope.spawn(|| {
                server1_run(&mut s1_endpoint, &ctx1, roster, num_classes, seed1, ranking, mode)
            });
            let h2 = scope.spawn(|| {
                server2_run(&mut s2_endpoint, &ctx2, roster, num_classes, seed2, ranking, mode)
            });
            (h1.join().expect("S1 thread panicked"), h2.join().expect("S2 thread panicked"))
        });
        // When one server fails mid-protocol the other times out waiting;
        // surface the root cause, not the timeout it induced.
        let (rep1, rep2) = match (r1, r2) {
            (Ok(l1), Ok(l2)) => (l1, l2),
            (Err(SmcError::Transport(_)), Err(root)) => return Err(root),
            (Err(root), _) => return Err(root),
            (_, Err(root)) => return Err(root),
        };
        assert_eq!(rep1.label, rep2.label, "servers must agree on the outcome");
        assert_eq!(rep1.survivors, rep2.survivors, "servers must agree on the surviving set");
        assert_eq!(
            rep1.noisy_survivors, rep2.noisy_survivors,
            "servers must agree on the step-6 surviving set"
        );
        let ServerReport { label, survivors, noisy_survivors } = rep1;

        // ---- Witness and health over the sets actually counted. ----
        let pos = |user: usize| {
            roster.iter().position(|&r| r == user).expect("survivor must be on the roster")
        };
        let mut witness = SecureWitness {
            counts_scaled: vec![0i64; num_classes],
            z1_scaled: vec![0i64; num_classes],
            noisy_counts_scaled: vec![0i64; num_classes],
            z2_scaled: vec![0i64; num_classes],
            threshold_scaled: survivors.iter().map(|&u| off1[pos(u)] + off2[pos(u)]).sum(),
        };
        for &u in &survivors {
            let p = pos(u);
            for k in 0..num_classes {
                witness.counts_scaled[k] += user_counts[p][k];
                witness.z1_scaled[k] += user_z1[p][k];
            }
        }
        let z2_cohort = noisy_survivors.as_deref().unwrap_or(&survivors);
        for &u in z2_cohort {
            let p = pos(u);
            for k in 0..num_classes {
                witness.noisy_counts_scaled[k] += user_counts[p][k];
                witness.z2_scaled[k] += user_z2[p][k];
            }
        }

        let fault_stats = meter.fault_stats();
        let mut dropouts: Vec<(usize, Step)> = roster
            .iter()
            .filter(|u| !survivors.contains(u))
            .map(|&u| (u, Step::SecureSumVotes))
            .collect();
        if let Some(nv) = &noisy_survivors {
            dropouts.extend(
                survivors.iter().filter(|u| !nv.contains(u)).map(|&u| (u, Step::SecureSumNoisy)),
            );
        }
        let share_fraction = |cohort: usize| (cohort as f64 / num_users as f64).sqrt();
        let health = RoundHealth {
            intended_users: roster.to_vec(),
            realized_sigma1: self.consensus.sigma1 * share_fraction(survivors.len()),
            realized_sigma2: noisy_survivors
                .as_ref()
                .map(|nv| self.consensus.sigma2 * share_fraction(nv.len())),
            survivors,
            noisy_survivors,
            dropouts,
            retries: fault_stats.retries - fault_stats_before.retries,
            timeouts: fault_stats.timeouts - fault_stats_before.timeouts,
        };
        Ok(SecureOutcome { label, witness, health })
    }
}

/// S1's full Alg. 5 run. Records per-step wall time (S2's work overlaps
/// this wall clock, matching how the paper reports per-step costs).
fn server1_rank<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    sequence: &[i128],
    step: Step,
    ranking: RankingStrategy,
    rng: &mut R,
) -> Result<usize, SmcError> {
    match ranking {
        RankingStrategy::Pairwise => server1_argmax_pairwise(endpoint, ctx, sequence, step, rng),
        RankingStrategy::Tournament => {
            server1_argmax_tournament(endpoint, ctx, sequence, step, rng)
        }
        RankingStrategy::Batched => server1_argmax_batched(endpoint, ctx, sequence, step, rng),
    }
}

fn server2_rank<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    sequence: &[i128],
    step: Step,
    ranking: RankingStrategy,
    rng: &mut R,
) -> Result<usize, SmcError> {
    match ranking {
        RankingStrategy::Pairwise => server2_argmax_pairwise(endpoint, ctx, sequence, step, rng),
        RankingStrategy::Tournament => {
            server2_argmax_tournament(endpoint, ctx, sequence, step, rng)
        }
        RankingStrategy::Batched => server2_argmax_batched(endpoint, ctx, sequence, step, rng),
    }
}

/// The aggregated vote vector, threshold vector and surviving user ids
/// of a step-2 collection.
type VotesThreshSurvivors = (Vec<Ciphertext>, Vec<Ciphertext>, Vec<usize>);

/// Step-2 collection for either server: strict (`quorum == None`, every
/// roster upload must arrive) or resilient (collect what arrives,
/// reconcile survivors with the peer, enforce the quorum).
fn collect_votes_and_thresh(
    endpoint: &mut Endpoint,
    roster: &[usize],
    num_classes: usize,
    peer_key: &paillier::PublicKey,
    peer_server: PartyId,
    quorum: Option<usize>,
    par: &Parallelism,
) -> Result<VotesThreshSurvivors, SmcError> {
    match quorum {
        None => {
            let votes = aggregate_user_vectors(
                endpoint,
                Step::SecureSumVotes,
                roster.len(),
                num_classes,
                peer_key,
                par,
            )?;
            let thresh = aggregate_user_vectors(
                endpoint,
                Step::SecureSumVotes,
                roster.len(),
                num_classes,
                peer_key,
                par,
            )?;
            Ok((votes, thresh, roster.to_vec()))
        }
        Some(q) => {
            let mut agg = aggregate_surviving_vectors(
                endpoint,
                Step::SecureSumVotes,
                roster,
                num_classes,
                2,
                peer_key,
                peer_server,
                q,
                par,
            )?;
            let thresh = agg.sums.pop().expect("two aggregated vectors");
            let votes = agg.sums.pop().expect("two aggregated vectors");
            Ok((votes, thresh, agg.survivors))
        }
    }
}

/// Step-6 collection for either server, over the step-2 survivors.
fn collect_noisy(
    endpoint: &mut Endpoint,
    survivors: &[usize],
    num_classes: usize,
    peer_key: &paillier::PublicKey,
    peer_server: PartyId,
    quorum: Option<usize>,
    par: &Parallelism,
) -> Result<(Vec<Ciphertext>, Vec<usize>), SmcError> {
    match quorum {
        None => {
            let noisy = aggregate_user_vectors(
                endpoint,
                Step::SecureSumNoisy,
                survivors.len(),
                num_classes,
                peer_key,
                par,
            )?;
            Ok((noisy, survivors.to_vec()))
        }
        Some(q) => {
            let mut agg = aggregate_surviving_vectors(
                endpoint,
                Step::SecureSumNoisy,
                survivors,
                num_classes,
                1,
                peer_key,
                peer_server,
                q,
                par,
            )?;
            let noisy = agg.sums.pop().expect("one aggregated vector");
            Ok((noisy, agg.survivors))
        }
    }
}

fn server1_run(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    roster: &[usize],
    num_classes: usize,
    seed: u64,
    ranking: RankingStrategy,
    quorum: Option<usize>,
) -> Result<ServerReport, SmcError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let meter = Arc::clone(endpoint.meter());
    let pk2 = ctx.peer_public().clone();

    // Step 2: aggregate the vote shares and threshold shares.
    let (enc_votes, enc_thresh, survivors) = meter.time(Step::SecureSumVotes, || {
        collect_votes_and_thresh(
            endpoint,
            roster,
            num_classes,
            &pk2,
            PartyId::Server2,
            quorum,
            ctx.parallelism(),
        )
    })?;

    // Step 3: Blind-and-Permute over both vectors, one shared π.
    let bp1 = meter.time(Step::BlindPermute1, || {
        server1_blind_permute(
            endpoint,
            ctx,
            &[enc_votes, enc_thresh],
            Step::BlindPermute1,
            &mut rng,
        )
    })?;

    // Step 4: ranking → permuted winner slot.
    let slot = meter.time(Step::CompareRank, || {
        server1_rank(endpoint, ctx, &bp1.sequences[0], Step::CompareRank, ranking, &mut rng)
    })?;

    // Step 5: noisy threshold check at that slot.
    let passed = meter.time(Step::ThresholdCheck, || {
        server1_compare_geq(endpoint, ctx, bp1.sequences[1][slot], Step::ThresholdCheck, &mut rng)
    })?;
    if !passed {
        return Ok(ServerReport { label: None, survivors, noisy_survivors: None });
    }

    // Step 6: aggregate the noisy vote shares over the survivors.
    let (enc_noisy, noisy_survivors) = meter.time(Step::SecureSumNoisy, || {
        collect_noisy(
            endpoint,
            &survivors,
            num_classes,
            &pk2,
            PartyId::Server2,
            quorum,
            ctx.parallelism(),
        )
    })?;

    // Step 7: second Blind-and-Permute, fresh π′.
    let bp2 = meter.time(Step::BlindPermute2, || {
        server1_blind_permute(endpoint, ctx, &[enc_noisy], Step::BlindPermute2, &mut rng)
    })?;

    // Step 8: rank the noisy votes.
    let noisy_slot = meter.time(Step::CompareNoisyRank, || {
        server1_rank(endpoint, ctx, &bp2.sequences[0], Step::CompareNoisyRank, ranking, &mut rng)
    })?;
    let _ = noisy_slot; // S2 drives restoration from the same slot.

    // Step 9: restore the true label.
    let label = meter.time(Step::Restoration, || {
        server1_restore(endpoint, ctx, &bp2.own_permutation, Step::Restoration, &mut rng)
    })?;
    Ok(ServerReport { label: Some(label), survivors, noisy_survivors: Some(noisy_survivors) })
}

/// S2's full Alg. 5 run (mirror of [`server1_run`], no timing records).
fn server2_run(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    roster: &[usize],
    num_classes: usize,
    seed: u64,
    ranking: RankingStrategy,
    quorum: Option<usize>,
) -> Result<ServerReport, SmcError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pk1 = ctx.peer_public().clone();

    let (enc_votes, enc_thresh, survivors) = collect_votes_and_thresh(
        endpoint,
        roster,
        num_classes,
        &pk1,
        PartyId::Server1,
        quorum,
        ctx.parallelism(),
    )?;

    let bp1 = server2_blind_permute(
        endpoint,
        ctx,
        &[enc_votes, enc_thresh],
        Step::BlindPermute1,
        &mut rng,
    )?;

    let slot =
        server2_rank(endpoint, ctx, &bp1.sequences[0], Step::CompareRank, ranking, &mut rng)?;

    let passed =
        server2_compare_geq(endpoint, ctx, bp1.sequences[1][slot], Step::ThresholdCheck, &mut rng)?;
    if !passed {
        return Ok(ServerReport { label: None, survivors, noisy_survivors: None });
    }

    let (enc_noisy, noisy_survivors) = collect_noisy(
        endpoint,
        &survivors,
        num_classes,
        &pk1,
        PartyId::Server1,
        quorum,
        ctx.parallelism(),
    )?;

    let bp2 = server2_blind_permute(endpoint, ctx, &[enc_noisy], Step::BlindPermute2, &mut rng)?;

    let noisy_slot =
        server2_rank(endpoint, ctx, &bp2.sequences[0], Step::CompareNoisyRank, ranking, &mut rng)?;

    let label = server2_restore(
        endpoint,
        ctx,
        &bp2.own_permutation,
        noisy_slot,
        Step::Restoration,
        &mut rng,
    )?;
    Ok(ServerReport { label: Some(label), survivors, noisy_survivors: Some(noisy_survivors) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::threshold_decision_scaled;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    /// Shared small-parameter engine: keygen dominates otherwise.
    fn engine() -> &'static SecureEngine {
        static ENGINE: OnceLock<SecureEngine> = OnceLock::new();
        ENGINE.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(2024);
            SecureEngine::new(
                SessionConfig::test(4, 3),
                ConsensusConfig::paper_default(1e-6, 1e-6),
                &mut rng,
            )
        })
    }

    fn onehot(k: usize) -> Vec<f64> {
        let mut v = vec![0.0; 3];
        v[k] = 1.0;
        v
    }

    #[test]
    fn unanimous_vote_released() {
        let mut rng = StdRng::seed_from_u64(1);
        let votes: Vec<Vec<f64>> = (0..4).map(|_| onehot(1)).collect();
        let out = engine().run_instance(&votes, Meter::new(), &mut rng).unwrap();
        assert_eq!(out.label, Some(1));
        assert_eq!(out.witness.counts_scaled[1], 4 * 65536);
        // A clean strict round: everyone survived, noise at full scale.
        assert!(out.health.is_clean());
        assert_eq!(out.health.survivors, vec![0, 1, 2, 3]);
        assert_eq!(out.health.noisy_survivors.as_deref(), Some(&[0, 1, 2, 3][..]));
        assert_eq!(out.health.realized_sigma1, 1e-6);
        assert_eq!(out.health.realized_sigma2, Some(1e-6));
        assert_eq!(out.witness.noisy_counts_scaled, out.witness.counts_scaled);
    }

    #[test]
    fn split_vote_rejected_at_threshold() {
        let mut rng = StdRng::seed_from_u64(2);
        // 2/1/1 split over 4 users: top vote 2 < T = 2.4.
        let votes = vec![onehot(0), onehot(0), onehot(1), onehot(2)];
        let out = engine().run_instance(&votes, Meter::new(), &mut rng).unwrap();
        assert_eq!(out.label, None);
        // Rejected rounds never run step 6: no realized argmax noise, and
        // the accountant only charges the Sparse Vector test.
        assert_eq!(out.health.noisy_survivors, None);
        assert_eq!(out.health.realized_sigma2, None);
        let rejected = out.health.charged_rdp().to_epsilon(1e-6);
        let released = dp::rdp::LinearRdp::sparse_vector(1e-6)
            .compose(&dp::rdp::LinearRdp::report_noisy_max(1e-6))
            .to_epsilon(1e-6);
        assert!(rejected < released, "a rejected round must charge less than a release");
    }

    #[test]
    fn secure_path_matches_clear_decision_function() {
        // Theorem 3 pinned by test: the secure label equals the decision
        // function applied to the witness aggregates.
        let mut rng = StdRng::seed_from_u64(3);
        let vote_sets = [
            vec![onehot(0), onehot(0), onehot(0), onehot(2)],
            vec![onehot(2), onehot(2), onehot(2), onehot(2)],
            vec![onehot(0), onehot(1), onehot(1), onehot(1)],
            vec![
                vec![0.5, 0.25, 0.25],
                vec![0.6, 0.2, 0.2],
                vec![0.7, 0.2, 0.1],
                vec![0.9, 0.05, 0.05],
            ],
        ];
        for votes in vote_sets {
            let out = engine().run_instance(&votes, Meter::new(), &mut rng).unwrap();
            let expect = threshold_decision_scaled(
                &out.witness.counts_scaled,
                &out.witness.z1_scaled,
                &out.witness.z2_scaled,
                out.witness.threshold_scaled,
            );
            assert_eq!(out.label, expect, "votes {votes:?}");
        }
    }

    #[test]
    fn per_step_traffic_and_time_recorded() {
        let mut rng = StdRng::seed_from_u64(4);
        let votes: Vec<Vec<f64>> = (0..4).map(|_| onehot(0)).collect();
        let meter = Meter::new();
        let out = engine().run_instance(&votes, Arc::clone(&meter), &mut rng).unwrap();
        assert_eq!(out.label, Some(0));
        let report = meter.report();
        for step in [
            Step::SecureSumVotes,
            Step::BlindPermute1,
            Step::CompareRank,
            Step::ThresholdCheck,
            Step::SecureSumNoisy,
            Step::BlindPermute2,
            Step::CompareNoisyRank,
            Step::Restoration,
        ] {
            assert!(report.step_bytes(step) > 0, "no traffic recorded for {step}");
        }
        assert!(report.step_time(Step::CompareRank) > std::time::Duration::ZERO);
        // The ranking step compares K(K−1)/2 pairs vs 1 threshold compare.
        assert!(
            report.step_bytes(Step::CompareRank) > report.step_bytes(Step::ThresholdCheck),
            "pairwise ranking must dominate the single threshold check"
        );
    }

    #[test]
    fn rejected_queries_skip_late_steps() {
        let mut rng = StdRng::seed_from_u64(5);
        let votes = vec![onehot(0), onehot(1), onehot(2), onehot(0)];
        let meter = Meter::new();
        let out = engine().run_instance(&votes, Arc::clone(&meter), &mut rng).unwrap();
        assert_eq!(out.label, None);
        let report = meter.report();
        // Steps 7-9 never run on a rejection; step 6 shares were sent by
        // users but never aggregated into server traffic beyond that.
        assert_eq!(report.step_bytes(Step::BlindPermute2), 0);
        assert_eq!(report.step_bytes(Step::Restoration), 0);
    }

    #[test]
    fn batched_ranking_matches_decision_function() {
        let mut rng = StdRng::seed_from_u64(7);
        let batched = SecureEngine::with_keys(
            SessionKeys::generate(SessionConfig::test(4, 3), &mut rng),
            ConsensusConfig::paper_default(1e-6, 1e-6),
        )
        .with_ranking(RankingStrategy::Batched);
        for votes in [
            vec![onehot(2), onehot(2), onehot(2), onehot(0)],
            vec![onehot(1), onehot(0), onehot(1), onehot(1)],
        ] {
            let out = batched.run_instance(&votes, Meter::new(), &mut rng).unwrap();
            let expect = threshold_decision_scaled(
                &out.witness.counts_scaled,
                &out.witness.z1_scaled,
                &out.witness.z2_scaled,
                out.witness.threshold_scaled,
            );
            assert_eq!(out.label, expect, "batched ranking, votes {votes:?}");
        }
    }

    #[test]
    fn batched_ranking_uses_fewer_messages() {
        let mut rng = StdRng::seed_from_u64(8);
        let keys = SessionKeys::generate(SessionConfig::test(4, 3), &mut rng);
        let votes: Vec<Vec<f64>> = (0..4).map(|_| onehot(1)).collect();
        let run_with = |ranking: RankingStrategy, rng: &mut StdRng| {
            let engine = SecureEngine::with_keys(
                SessionKeys::generate(SessionConfig::test(4, 3), rng),
                ConsensusConfig::paper_default(1e-6, 1e-6),
            )
            .with_ranking(ranking);
            let meter = Meter::new();
            engine.run_instance(&votes, Arc::clone(&meter), rng).unwrap();
            meter
                .report()
                .link_stats(Step::CompareRank, transport::LinkKind::ServerToServer)
                .messages
        };
        let _ = keys;
        let sequential = run_with(RankingStrategy::Pairwise, &mut rng);
        let batched = run_with(RankingStrategy::Batched, &mut rng);
        assert_eq!(batched, 3, "batched ranking is 3 messages");
        assert!(sequential > batched, "{sequential} vs {batched}");
    }

    #[test]
    fn noise_changes_released_label_with_large_sigma2() {
        // With σ2 comparable to the margin the noisy winner sometimes
        // differs from the true winner — that is the DP mechanism working.
        let mut rng = StdRng::seed_from_u64(6);
        let noisy_engine = SecureEngine::with_keys(
            SessionKeys::generate(SessionConfig::test(4, 3), &mut rng),
            ConsensusConfig::paper_default(1e-6, 8.0),
        );
        let votes = vec![onehot(0), onehot(0), onehot(0), onehot(1)];
        let mut flips = 0;
        for _ in 0..12 {
            let out = noisy_engine.run_instance(&votes, Meter::new(), &mut rng).unwrap();
            // Threshold noise is tiny, so the gate always passes (3 ≥ 2.4).
            let label = out.label.expect("gate passes");
            let expect = threshold_decision_scaled(
                &out.witness.counts_scaled,
                &out.witness.z1_scaled,
                &out.witness.z2_scaled,
                out.witness.threshold_scaled,
            );
            assert_eq!(Some(label), expect, "secure must track the noisy decision");
            if label != 0 {
                flips += 1;
            }
        }
        assert!(flips > 0, "σ2 = 8 over a 2-vote margin must flip sometimes");
    }
}
