//! The full secure execution of Alg. 5 over real channels.
//!
//! One [`SecureEngine::run_instance`] call performs, for a single query
//! instance:
//!
//! 1. **Setup** — each user splits its scaled vote vector into additive
//!    shares, draws distributed noise shares, and embeds its slice of the
//!    threshold (`T/(2|U|)` per share side, split exactly);
//! 2. **Secure sum (step 2)** — users upload `E_pk2[a^u]`,
//!    `E_pk2[a^u − T/(2|U|) + z₁ₐ^u]` to S1 and the mirrored vectors to
//!    S2; servers aggregate homomorphically;
//! 3. **Blind-and-Permute (step 3)** — both aggregated vectors pass
//!    through Alg. 2 under one shared hidden permutation `π`;
//! 4. **Secure comparison (step 4)** — pairwise DGK ranking finds the
//!    permuted winner slot `π(i*)`;
//! 5. **Threshold check (step 5)** — one DGK comparison of the two
//!    threshold sequences at `π(i*)` decides
//!    `c_{i*} + N(0, σ₁²) ≥ T`; on failure both servers output `⊥`;
//! 6. **Secure sum (step 6)** — the noisy vote shares
//!    `a^u + z₂ₐ^u` / `b^u + z₂ᵦ^u` are aggregated;
//! 7. **Blind-and-Permute (step 7)** — under a fresh permutation `π′`;
//! 8. **Secure comparison (step 8)** — pairwise ranking of the noisy
//!    votes finds `π′(ĩ*)`;
//! 9. **Restoration (step 9)** — Alg. 3 recovers and publishes `ĩ*`.
//!
//! The engine runs users up-front (they are non-interactive senders) and
//! the two servers on real threads. Every message is metered per step,
//! and S1's thread records per-step wall time — together regenerating
//! Tables I and II.

use std::sync::Arc;

use paillier::Ciphertext;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smc::argmax::{
    server1_argmax_pairwise, server1_argmax_tournament, server2_argmax_pairwise,
    server2_argmax_tournament,
};
use smc::batch::{server1_argmax_batched, server2_argmax_batched};
use smc::blind_permute::{server1_blind_permute, server2_blind_permute};
use smc::compare::{server1_compare_geq, server2_compare_geq};
use smc::restoration::{server1_restore, server2_restore};
use smc::secure_sum::{aggregate_user_vectors, send_share_to_server1, send_share_to_server2};
use smc::{ServerContext, SessionConfig, SessionKeys, SmcError};
use transport::{Endpoint, Meter, Network, Step};

use crate::clear::draw_user_noise_shares;
use crate::config::{scale_vote_vector, scale_votes, split_evenly, ConsensusConfig};

/// Aggregate quantities the simulation driver observed while playing all
/// users — the ground truth the secure output can be checked against
/// (Theorem 3 correctness). A real deployment has no such observer; this
/// exists because the harness legitimately controls every party.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureWitness {
    /// Exact scaled vote counts.
    pub counts_scaled: Vec<i64>,
    /// Aggregated scaled threshold noise.
    pub z1_scaled: Vec<i64>,
    /// Aggregated scaled argmax noise.
    pub z2_scaled: Vec<i64>,
    /// The scaled threshold.
    pub threshold_scaled: i64,
}

/// Output of one secure consensus query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureOutcome {
    /// The released label (`None` = `⊥`, threshold failed).
    pub label: Option<usize>,
    /// Driver-side ground truth for verification.
    pub witness: SecureWitness,
}

/// How the servers rank the permuted sequences in steps 4 and 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankingStrategy {
    /// The paper's sequential all-pairs comparisons — `K(K−1)/2`
    /// three-message dialogues.
    #[default]
    Pairwise,
    /// Linear-scan champion tournament — `K−1` comparisons.
    Tournament,
    /// All pairs batched into three messages (same computation, minimal
    /// rounds; see `smc::batch`).
    Batched,
}

/// A provisioned secure deployment: session keys plus consensus
/// parameters.
pub struct SecureEngine {
    keys: SessionKeys,
    consensus: ConsensusConfig,
    ranking: RankingStrategy,
}

impl std::fmt::Debug for SecureEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SecureEngine({:?})", self.keys.config())
    }
}

impl SecureEngine {
    /// Generates key material for `session` and binds the consensus
    /// parameters.
    pub fn new<R: Rng + ?Sized>(
        session: SessionConfig,
        consensus: ConsensusConfig,
        rng: &mut R,
    ) -> Self {
        SecureEngine {
            keys: SessionKeys::generate(session, rng),
            consensus,
            ranking: RankingStrategy::default(),
        }
    }

    /// Builds an engine from pre-generated keys.
    pub fn with_keys(keys: SessionKeys, consensus: ConsensusConfig) -> Self {
        SecureEngine { keys, consensus, ranking: RankingStrategy::default() }
    }

    /// Selects the ranking strategy for steps 4 and 8.
    #[must_use]
    pub fn with_ranking(mut self, ranking: RankingStrategy) -> Self {
        self.ranking = ranking;
        self
    }

    /// The configured ranking strategy.
    pub fn ranking(&self) -> RankingStrategy {
        self.ranking
    }

    /// The session configuration.
    pub fn session_config(&self) -> &SessionConfig {
        self.keys.config()
    }

    /// The consensus configuration.
    pub fn consensus_config(&self) -> &ConsensusConfig {
        &self.consensus
    }

    /// Runs a batch of queries sequentially, sharing the key material and
    /// meter — how the cost-table binaries drive multi-instance runs.
    ///
    /// # Errors
    ///
    /// Stops at the first failing instance and propagates its error.
    ///
    /// # Panics
    ///
    /// Panics if any instance's vote matrix shape disagrees with the
    /// session.
    pub fn run_batch<R: Rng + ?Sized>(
        &self,
        instances: &[Vec<Vec<f64>>],
        meter: Arc<Meter>,
        rng: &mut R,
    ) -> Result<Vec<SecureOutcome>, SmcError> {
        instances
            .iter()
            .map(|votes| self.run_instance(votes, Arc::clone(&meter), rng))
            .collect()
    }

    /// Runs one query end to end. `votes` holds each user's vote vector
    /// in vote units (one-hot or softmax). Traffic and timing are
    /// recorded into `meter`.
    ///
    /// # Errors
    ///
    /// Propagates protocol failures ([`SmcError`]). A threshold rejection
    /// is *not* an error: it returns `label: None`.
    ///
    /// # Panics
    ///
    /// Panics if the vote matrix shape disagrees with the session, or if
    /// a server thread panics.
    pub fn run_instance<R: Rng + ?Sized>(
        &self,
        votes: &[Vec<f64>],
        meter: Arc<Meter>,
        rng: &mut R,
    ) -> Result<SecureOutcome, SmcError> {
        let num_users = self.keys.config().num_users;
        let num_classes = self.keys.config().num_classes;
        assert_eq!(votes.len(), num_users, "one vote vector per user");

        let threshold_scaled = scale_votes(self.consensus.threshold_votes(num_users));
        // Exact integer split of T across 2|U| share slots: the first |U|
        // are subtracted on the S1 side, the rest added on the S2 side.
        let offsets = split_evenly(threshold_scaled, 2 * num_users);
        let (off1, off2) = offsets.split_at(num_users);

        let mut net = Network::with_meter(num_users, meter);
        let mut s1_endpoint = net.take_endpoint(transport::PartyId::Server1);
        let mut s2_endpoint = net.take_endpoint(transport::PartyId::Server2);
        let user_ctx = self.keys.user();
        let domain = user_ctx.domain();

        // ---- User phase: share, add noise, send. ----
        let mut witness = SecureWitness {
            counts_scaled: vec![0i64; num_classes],
            z1_scaled: vec![0i64; num_classes],
            z2_scaled: vec![0i64; num_classes],
            threshold_scaled,
        };
        for (u, vote) in votes.iter().enumerate() {
            assert_eq!(vote.len(), num_classes, "vote arity for user {u}");
            let endpoint = net.take_endpoint(transport::PartyId::User(u));
            let scaled = scale_vote_vector(vote);
            let z1 = draw_user_noise_shares(self.consensus.sigma1, num_users, num_classes, rng);
            let z2 = draw_user_noise_shares(self.consensus.sigma2, num_users, num_classes, rng);
            for k in 0..num_classes {
                witness.counts_scaled[k] += scaled[k];
                witness.z1_scaled[k] += z1.for_s1[k] + z1.for_s2[k];
                witness.z2_scaled[k] += z2.for_s1[k] + z2.for_s2[k];
            }

            let as_i128: Vec<i128> = scaled.iter().map(|&v| v as i128).collect();
            let (a, b) = domain.split_vec(&as_i128, rng);

            // Step 2 payloads.
            let thresh_a: Vec<i128> = (0..num_classes)
                .map(|k| a[k] - off1[u] as i128 + z1.for_s1[k] as i128)
                .collect();
            let thresh_b: Vec<i128> = (0..num_classes)
                .map(|k| off2[u] as i128 - b[k] - z1.for_s2[k] as i128)
                .collect();
            // Step 6 payloads.
            let noisy_a: Vec<i128> =
                (0..num_classes).map(|k| a[k] + z2.for_s1[k] as i128).collect();
            let noisy_b: Vec<i128> =
                (0..num_classes).map(|k| b[k] + z2.for_s2[k] as i128).collect();

            send_share_to_server1(&endpoint, &user_ctx, Step::SecureSumVotes, &a, rng)?;
            send_share_to_server1(&endpoint, &user_ctx, Step::SecureSumVotes, &thresh_a, rng)?;
            send_share_to_server1(&endpoint, &user_ctx, Step::SecureSumNoisy, &noisy_a, rng)?;
            send_share_to_server2(&endpoint, &user_ctx, Step::SecureSumVotes, &b, rng)?;
            send_share_to_server2(&endpoint, &user_ctx, Step::SecureSumVotes, &thresh_b, rng)?;
            send_share_to_server2(&endpoint, &user_ctx, Step::SecureSumNoisy, &noisy_b, rng)?;
        }

        // ---- Server phase: two real threads. ----
        let ctx1 = self.keys.server1();
        let ctx2 = self.keys.server2();
        let seed1: u64 = rng.gen();
        let seed2: u64 = rng.gen();
        let ranking = self.ranking;
        let (r1, r2) = std::thread::scope(|scope| {
            let h1 = scope.spawn(|| {
                server1_run(&mut s1_endpoint, &ctx1, num_users, num_classes, seed1, ranking)
            });
            let h2 = scope.spawn(|| {
                server2_run(&mut s2_endpoint, &ctx2, num_users, num_classes, seed2, ranking)
            });
            (h1.join().expect("S1 thread panicked"), h2.join().expect("S2 thread panicked"))
        });
        // When one server fails mid-protocol the other times out waiting;
        // surface the root cause, not the timeout it induced.
        let (label1, label2) = match (r1, r2) {
            (Ok(l1), Ok(l2)) => (l1, l2),
            (Err(SmcError::Transport(_)), Err(root)) => return Err(root),
            (Err(root), _) => return Err(root),
            (_, Err(root)) => return Err(root),
        };
        assert_eq!(label1, label2, "servers must agree on the outcome");
        Ok(SecureOutcome { label: label1, witness })
    }
}

/// S1's full Alg. 5 run. Records per-step wall time (S2's work overlaps
/// this wall clock, matching how the paper reports per-step costs).
fn server1_rank<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    sequence: &[i128],
    step: Step,
    ranking: RankingStrategy,
    rng: &mut R,
) -> Result<usize, SmcError> {
    match ranking {
        RankingStrategy::Pairwise => server1_argmax_pairwise(endpoint, ctx, sequence, step, rng),
        RankingStrategy::Tournament => {
            server1_argmax_tournament(endpoint, ctx, sequence, step, rng)
        }
        RankingStrategy::Batched => server1_argmax_batched(endpoint, ctx, sequence, step, rng),
    }
}

fn server2_rank<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    sequence: &[i128],
    step: Step,
    ranking: RankingStrategy,
    rng: &mut R,
) -> Result<usize, SmcError> {
    match ranking {
        RankingStrategy::Pairwise => server2_argmax_pairwise(endpoint, ctx, sequence, step, rng),
        RankingStrategy::Tournament => {
            server2_argmax_tournament(endpoint, ctx, sequence, step, rng)
        }
        RankingStrategy::Batched => server2_argmax_batched(endpoint, ctx, sequence, step, rng),
    }
}

fn server1_run(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    num_users: usize,
    num_classes: usize,
    seed: u64,
    ranking: RankingStrategy,
) -> Result<Option<usize>, SmcError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let meter = Arc::clone(endpoint.meter());
    let pk2 = ctx.peer_public().clone();

    // Step 2: aggregate the vote shares and threshold shares.
    let (enc_votes, enc_thresh): (Vec<Ciphertext>, Vec<Ciphertext>) =
        meter.time(Step::SecureSumVotes, || -> Result<_, SmcError> {
            let votes =
                aggregate_user_vectors(endpoint, Step::SecureSumVotes, num_users, num_classes, &pk2)?;
            let thresh =
                aggregate_user_vectors(endpoint, Step::SecureSumVotes, num_users, num_classes, &pk2)?;
            Ok((votes, thresh))
        })?;

    // Step 3: Blind-and-Permute over both vectors, one shared π.
    let bp1 = meter.time(Step::BlindPermute1, || {
        server1_blind_permute(endpoint, ctx, &[enc_votes, enc_thresh], Step::BlindPermute1, &mut rng)
    })?;

    // Step 4: ranking → permuted winner slot.
    let slot = meter.time(Step::CompareRank, || {
        server1_rank(endpoint, ctx, &bp1.sequences[0], Step::CompareRank, ranking, &mut rng)
    })?;

    // Step 5: noisy threshold check at that slot.
    let passed = meter.time(Step::ThresholdCheck, || {
        server1_compare_geq(endpoint, ctx, bp1.sequences[1][slot], Step::ThresholdCheck, &mut rng)
    })?;
    if !passed {
        return Ok(None);
    }

    // Step 6: aggregate the noisy vote shares.
    let enc_noisy = meter.time(Step::SecureSumNoisy, || {
        aggregate_user_vectors(endpoint, Step::SecureSumNoisy, num_users, num_classes, &pk2)
    })?;

    // Step 7: second Blind-and-Permute, fresh π′.
    let bp2 = meter.time(Step::BlindPermute2, || {
        server1_blind_permute(endpoint, ctx, &[enc_noisy], Step::BlindPermute2, &mut rng)
    })?;

    // Step 8: rank the noisy votes.
    let noisy_slot = meter.time(Step::CompareNoisyRank, || {
        server1_rank(endpoint, ctx, &bp2.sequences[0], Step::CompareNoisyRank, ranking, &mut rng)
    })?;
    let _ = noisy_slot; // S2 drives restoration from the same slot.

    // Step 9: restore the true label.
    let label = meter.time(Step::Restoration, || {
        server1_restore(endpoint, ctx, &bp2.own_permutation, Step::Restoration, &mut rng)
    })?;
    Ok(Some(label))
}

/// S2's full Alg. 5 run (mirror of [`server1_run`], no timing records).
fn server2_run(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    num_users: usize,
    num_classes: usize,
    seed: u64,
    ranking: RankingStrategy,
) -> Result<Option<usize>, SmcError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pk1 = ctx.peer_public().clone();

    let enc_votes =
        aggregate_user_vectors(endpoint, Step::SecureSumVotes, num_users, num_classes, &pk1)?;
    let enc_thresh =
        aggregate_user_vectors(endpoint, Step::SecureSumVotes, num_users, num_classes, &pk1)?;

    let bp1 = server2_blind_permute(
        endpoint,
        ctx,
        &[enc_votes, enc_thresh],
        Step::BlindPermute1,
        &mut rng,
    )?;

    let slot =
        server2_rank(endpoint, ctx, &bp1.sequences[0], Step::CompareRank, ranking, &mut rng)?;

    let passed = server2_compare_geq(
        endpoint,
        ctx,
        bp1.sequences[1][slot],
        Step::ThresholdCheck,
        &mut rng,
    )?;
    if !passed {
        return Ok(None);
    }

    let enc_noisy =
        aggregate_user_vectors(endpoint, Step::SecureSumNoisy, num_users, num_classes, &pk1)?;

    let bp2 = server2_blind_permute(endpoint, ctx, &[enc_noisy], Step::BlindPermute2, &mut rng)?;

    let noisy_slot = server2_rank(
        endpoint,
        ctx,
        &bp2.sequences[0],
        Step::CompareNoisyRank,
        ranking,
        &mut rng,
    )?;

    let label = server2_restore(
        endpoint,
        ctx,
        &bp2.own_permutation,
        noisy_slot,
        Step::Restoration,
        &mut rng,
    )?;
    Ok(Some(label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::threshold_decision_scaled;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    /// Shared small-parameter engine: keygen dominates otherwise.
    fn engine() -> &'static SecureEngine {
        static ENGINE: OnceLock<SecureEngine> = OnceLock::new();
        ENGINE.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(2024);
            SecureEngine::new(
                SessionConfig::test(4, 3),
                ConsensusConfig::paper_default(1e-6, 1e-6),
                &mut rng,
            )
        })
    }

    fn onehot(k: usize) -> Vec<f64> {
        let mut v = vec![0.0; 3];
        v[k] = 1.0;
        v
    }

    #[test]
    fn unanimous_vote_released() {
        let mut rng = StdRng::seed_from_u64(1);
        let votes: Vec<Vec<f64>> = (0..4).map(|_| onehot(1)).collect();
        let out = engine().run_instance(&votes, Meter::new(), &mut rng).unwrap();
        assert_eq!(out.label, Some(1));
        assert_eq!(out.witness.counts_scaled[1], 4 * 65536);
    }

    #[test]
    fn split_vote_rejected_at_threshold() {
        let mut rng = StdRng::seed_from_u64(2);
        // 2/1/1 split over 4 users: top vote 2 < T = 2.4.
        let votes = vec![onehot(0), onehot(0), onehot(1), onehot(2)];
        let out = engine().run_instance(&votes, Meter::new(), &mut rng).unwrap();
        assert_eq!(out.label, None);
    }

    #[test]
    fn secure_path_matches_clear_decision_function() {
        // Theorem 3 pinned by test: the secure label equals the decision
        // function applied to the witness aggregates.
        let mut rng = StdRng::seed_from_u64(3);
        let vote_sets = [
            vec![onehot(0), onehot(0), onehot(0), onehot(2)],
            vec![onehot(2), onehot(2), onehot(2), onehot(2)],
            vec![onehot(0), onehot(1), onehot(1), onehot(1)],
            vec![vec![0.5, 0.25, 0.25], vec![0.6, 0.2, 0.2], vec![0.7, 0.2, 0.1], vec![0.9, 0.05, 0.05]],
        ];
        for votes in vote_sets {
            let out = engine().run_instance(&votes, Meter::new(), &mut rng).unwrap();
            let expect = threshold_decision_scaled(
                &out.witness.counts_scaled,
                &out.witness.z1_scaled,
                &out.witness.z2_scaled,
                out.witness.threshold_scaled,
            );
            assert_eq!(out.label, expect, "votes {votes:?}");
        }
    }

    #[test]
    fn per_step_traffic_and_time_recorded() {
        let mut rng = StdRng::seed_from_u64(4);
        let votes: Vec<Vec<f64>> = (0..4).map(|_| onehot(0)).collect();
        let meter = Meter::new();
        let out = engine().run_instance(&votes, Arc::clone(&meter), &mut rng).unwrap();
        assert_eq!(out.label, Some(0));
        let report = meter.report();
        for step in [
            Step::SecureSumVotes,
            Step::BlindPermute1,
            Step::CompareRank,
            Step::ThresholdCheck,
            Step::SecureSumNoisy,
            Step::BlindPermute2,
            Step::CompareNoisyRank,
            Step::Restoration,
        ] {
            assert!(report.step_bytes(step) > 0, "no traffic recorded for {step}");
        }
        assert!(report.step_time(Step::CompareRank) > std::time::Duration::ZERO);
        // The ranking step compares K(K−1)/2 pairs vs 1 threshold compare.
        assert!(
            report.step_bytes(Step::CompareRank) > report.step_bytes(Step::ThresholdCheck),
            "pairwise ranking must dominate the single threshold check"
        );
    }

    #[test]
    fn rejected_queries_skip_late_steps() {
        let mut rng = StdRng::seed_from_u64(5);
        let votes = vec![onehot(0), onehot(1), onehot(2), onehot(0)];
        let meter = Meter::new();
        let out = engine().run_instance(&votes, Arc::clone(&meter), &mut rng).unwrap();
        assert_eq!(out.label, None);
        let report = meter.report();
        // Steps 7-9 never run on a rejection; step 6 shares were sent by
        // users but never aggregated into server traffic beyond that.
        assert_eq!(report.step_bytes(Step::BlindPermute2), 0);
        assert_eq!(report.step_bytes(Step::Restoration), 0);
    }

    #[test]
    fn batched_ranking_matches_decision_function() {
        let mut rng = StdRng::seed_from_u64(7);
        let batched = SecureEngine::with_keys(
            SessionKeys::generate(SessionConfig::test(4, 3), &mut rng),
            ConsensusConfig::paper_default(1e-6, 1e-6),
        )
        .with_ranking(RankingStrategy::Batched);
        for votes in [
            vec![onehot(2), onehot(2), onehot(2), onehot(0)],
            vec![onehot(1), onehot(0), onehot(1), onehot(1)],
        ] {
            let out = batched.run_instance(&votes, Meter::new(), &mut rng).unwrap();
            let expect = threshold_decision_scaled(
                &out.witness.counts_scaled,
                &out.witness.z1_scaled,
                &out.witness.z2_scaled,
                out.witness.threshold_scaled,
            );
            assert_eq!(out.label, expect, "batched ranking, votes {votes:?}");
        }
    }

    #[test]
    fn batched_ranking_uses_fewer_messages() {
        let mut rng = StdRng::seed_from_u64(8);
        let keys = SessionKeys::generate(SessionConfig::test(4, 3), &mut rng);
        let votes: Vec<Vec<f64>> = (0..4).map(|_| onehot(1)).collect();
        let run_with = |ranking: RankingStrategy, rng: &mut StdRng| {
            let engine = SecureEngine::with_keys(
                SessionKeys::generate(SessionConfig::test(4, 3), rng),
                ConsensusConfig::paper_default(1e-6, 1e-6),
            )
            .with_ranking(ranking);
            let meter = Meter::new();
            engine.run_instance(&votes, Arc::clone(&meter), rng).unwrap();
            meter.report().link_stats(Step::CompareRank, transport::LinkKind::ServerToServer).messages
        };
        let _ = keys;
        let sequential = run_with(RankingStrategy::Pairwise, &mut rng);
        let batched = run_with(RankingStrategy::Batched, &mut rng);
        assert_eq!(batched, 3, "batched ranking is 3 messages");
        assert!(sequential > batched, "{sequential} vs {batched}");
    }

    #[test]
    fn noise_changes_released_label_with_large_sigma2() {
        // With σ2 comparable to the margin the noisy winner sometimes
        // differs from the true winner — that is the DP mechanism working.
        let mut rng = StdRng::seed_from_u64(6);
        let noisy_engine = SecureEngine::with_keys(
            SessionKeys::generate(SessionConfig::test(4, 3), &mut rng),
            ConsensusConfig::paper_default(1e-6, 8.0),
        );
        let votes = vec![onehot(0), onehot(0), onehot(0), onehot(1)];
        let mut flips = 0;
        for _ in 0..12 {
            let out = noisy_engine.run_instance(&votes, Meter::new(), &mut rng).unwrap();
            // Threshold noise is tiny, so the gate always passes (3 ≥ 2.4).
            let label = out.label.expect("gate passes");
            let expect = threshold_decision_scaled(
                &out.witness.counts_scaled,
                &out.witness.z1_scaled,
                &out.witness.z2_scaled,
                out.witness.threshold_scaled,
            );
            assert_eq!(Some(label), expect, "secure must track the noisy decision");
            if label != 0 {
                flips += 1;
            }
        }
        assert!(flips > 0, "σ2 = 8 over a 2-vote margin must flip sometimes");
    }
}
