//! Multi-session consensus reactor: event-driven round state machines
//! with per-session fault isolation, admission control, and overload
//! shedding.
//!
//! [`SecureEngine::run_round`](crate::SecureEngine::run_round) drives
//! exactly one round to completion, blocking its caller until the round
//! terminates. A labeling service fields *many* concurrent queries; this
//! module turns the server side of a round into an explicit non-blocking
//! state machine and drives hundreds of them from one scheduler loop:
//!
//! * [`SessionMachine`] — one round as a pollable state machine, seeded
//!   by the serializable [`RoundState`] the crash-recovery layer already
//!   checkpoints. `poll(incoming_frame)` ingests at most one
//!   session-tagged frame and performs one bounded unit of work — either
//!   buffering an upload or advancing both servers exactly one pipeline
//!   step — and reports [`SessionPoll::NeedMore`], `Emit`, `Done`, or
//!   `Failed`.
//! * [`Reactor`] — the session table and scheduler: admission control
//!   against a hard session cap and an optional RDP budget (typed
//!   [`SessionRejected`], never a panic), fair round-robin servicing,
//!   per-session deadline watchdogs that evict stalled sessions, and
//!   `sessions_{admitted,rejected,evicted}` counters on the shared
//!   [`Meter`].
//!
//! # Fault isolation
//!
//! Each session runs over its own private micro-network (fresh bounded
//! links, sequence numbers restarting at 1), so a crashed, equivocating,
//! or quorum-losing session is torn down without touching any neighbor:
//! every other session's
//! [`ConsensusFingerprint`](crate::ConsensusFingerprint) stays
//! bit-identical to a solo run of the same round. The per-step engine
//! internals ([`server1_advance`]/[`server2_advance`]) are the *same*
//! functions `run_round` composes, so the reactor cannot drift from the
//! blocking path.
//!
//! # Scheduling model
//!
//! One poll advances both servers by one protocol step, on two scoped
//! threads (the steps are interactive: blind-permute and the DGK
//! comparisons exchange messages). Work per poll is therefore bounded by
//! the most expensive single step, which is what makes round-robin
//! servicing fair: no session can hold the scheduler for a whole round.
//!
//! # Exactly-once accounting
//!
//! When a budget gate is attached, admission reserves the worst-case
//! spend of every in-flight session (so concurrent admissions cannot
//! jointly overshoot the epsilon budget), and a finished session is
//! charged its realized cost exactly once, keyed by session id, on the
//! in-memory [`RdpLedger`].

use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use dp::rdp::LinearRdp;
use paillier::Ciphertext;
use rand::Rng;
use smc::{AuditContext, RoundState, ServerContext, SmcError};
use transport::{
    Endpoint, FaultEvent, FaultStats, Meter, Network, PartyId, SessionDemux, SessionError,
    SessionFrame, Step, TransportError, Wire,
};

use crate::recovery::RdpLedger;
use crate::secure::{server1_advance, server2_advance, PreparedRound, SecureEngine, SecureOutcome};

/// What one [`SessionMachine::poll`] call produced.
#[derive(Debug)]
pub enum SessionPoll {
    /// The machine is blocked on frames that have not arrived yet.
    NeedMore,
    /// One pipeline step completed; the frames are outbound progress
    /// beacons for the session's gateway.
    Emit(Vec<SessionFrame>),
    /// The round reached its terminal state and cross-checked cleanly.
    Done(Box<SecureOutcome>),
    /// The round failed; the machine is dead and must not be polled
    /// again.
    Failed(SmcError),
}

/// Internal lifecycle of a session machine.
enum Phase {
    /// Waiting for the client upload frames (6 per roster user).
    Collecting { buffered: Vec<SessionFrame>, expected: usize },
    /// Both server pipelines live over the session's private network.
    Running(Box<Run>),
    /// Done, failed, or poisoned mid-transition.
    Finished,
}

/// The live state of a running round: the private micro-network, both
/// server endpoints, both [`RoundState`]s and audit contexts. The
/// network handle is kept alive so non-roster endpoints do not drop
/// their links (a dropped link reads as a disconnect, not the timeout
/// the solo path sees — and that difference would change fingerprints).
struct Run {
    _net: Network,
    s1: Endpoint,
    s2: Endpoint,
    ctx1: ServerContext,
    ctx2: ServerContext,
    state1: RoundState,
    state2: RoundState,
    audit1: AuditContext,
    audit2: AuditContext,
    quorum: Option<usize>,
}

/// One consensus round as a pollable, non-blocking state machine.
///
/// Construction prepares the round (user shares, noise, encrypted
/// payloads) and returns the session-tagged upload frames a client-side
/// gateway would put on the wire; the machine then consumes those frames
/// back through [`SessionMachine::poll`] and advances the two server
/// pipelines one step per poll. See the [module docs](self).
pub struct SessionMachine {
    session: u64,
    engine: Arc<SecureEngine>,
    meter: Arc<Meter>,
    prepared: PreparedRound,
    fault_stats_before: FaultStats,
    phase: Phase,
}

impl fmt::Debug for SessionMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SessionMachine(session {})", self.session)
    }
}

impl SessionMachine {
    /// Prepares one round for `session` and returns the machine plus the
    /// client upload frames (six per roster user, in the canonical
    /// per-user order, sequence-numbered so arrival order never matters).
    ///
    /// # Errors
    ///
    /// Propagates [`SmcError`] from round preparation.
    ///
    /// # Panics
    ///
    /// As [`SecureEngine::run_round`]: panics on a vote matrix shape
    /// that disagrees with the roster, or an invalid roster.
    pub fn new<R: Rng + ?Sized>(
        session: u64,
        engine: Arc<SecureEngine>,
        votes: &[Vec<f64>],
        roster: &[usize],
        meter: Arc<Meter>,
        rng: &mut R,
    ) -> Result<(SessionMachine, Vec<SessionFrame>), SmcError> {
        let prepared = engine.prepare_round(votes, roster, rng)?;
        let mut frames = Vec::with_capacity(prepared.uploads.len() * 6);
        for (idx, up) in prepared.uploads.iter().enumerate() {
            let slots: [(PartyId, Step, &Vec<Ciphertext>); 6] = [
                (PartyId::Server1, Step::SecureSumVotes, &up.s1_votes),
                (PartyId::Server1, Step::SecureSumVotes, &up.s1_thresh),
                (PartyId::Server1, Step::SecureSumNoisy, &up.s1_noisy),
                (PartyId::Server2, Step::SecureSumVotes, &up.s2_votes),
                (PartyId::Server2, Step::SecureSumVotes, &up.s2_thresh),
                (PartyId::Server2, Step::SecureSumNoisy, &up.s2_noisy),
            ];
            for (slot, (to, step, payload)) in slots.into_iter().enumerate() {
                frames.push(SessionFrame {
                    session,
                    from: PartyId::User(up.user),
                    to,
                    step,
                    seq: (idx * 6 + slot) as u64,
                    payload: payload.to_bytes(),
                });
            }
        }
        let expected = frames.len();
        let fault_stats_before = meter.fault_stats();
        let machine = SessionMachine {
            session,
            engine,
            meter,
            prepared,
            fault_stats_before,
            phase: Phase::Collecting { buffered: Vec::new(), expected },
        };
        Ok((machine, frames))
    }

    /// This machine's session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// True while the machine is still waiting for upload frames (and
    /// therefore cannot progress without one).
    pub fn is_collecting(&self) -> bool {
        matches!(self.phase, Phase::Collecting { .. })
    }

    /// Ingests at most one frame and performs one bounded unit of work.
    ///
    /// While collecting, the frame is buffered; once all uploads are
    /// present the private network is built and the payloads injected
    /// (the heavy transition — still one poll). While running, both
    /// servers advance exactly one pipeline step; the poll returns
    /// [`SessionPoll::Emit`] with a progress beacon, or
    /// [`SessionPoll::Done`]/[`SessionPoll::Failed`] on termination.
    ///
    /// # Panics
    ///
    /// Panics if called after the machine reported `Done` or `Failed` —
    /// a scheduler bug, not a protocol condition.
    pub fn poll(&mut self, incoming: Option<SessionFrame>) -> SessionPoll {
        match &mut self.phase {
            Phase::Collecting { buffered, expected } => {
                if let Some(frame) = incoming {
                    debug_assert_eq!(frame.session, self.session, "demux routed a foreign frame");
                    // Duplicate-tolerant: redelivered frames are keyed out
                    // by their sequence number.
                    if buffered.iter().all(|f| f.seq != frame.seq) {
                        buffered.push(frame);
                    }
                }
                if buffered.len() < *expected {
                    return SessionPoll::NeedMore;
                }
                let mut frames = std::mem::take(buffered);
                frames.sort_by_key(|f| f.seq);
                // Poisoned until the transition succeeds: a failed start
                // must not leave a half-built Running phase behind.
                self.phase = Phase::Finished;
                match self.start_round(&frames) {
                    Ok(run) => {
                        self.phase = Phase::Running(run);
                        SessionPoll::NeedMore
                    }
                    Err(e) => SessionPoll::Failed(e),
                }
            }
            Phase::Running(run) => {
                debug_assert!(incoming.is_none(), "running sessions consume no further frames");
                let state1 = std::mem::replace(&mut run.state1, RoundState::Start);
                let state2 = std::mem::replace(&mut run.state2, RoundState::Start);
                let prepared = &self.prepared;
                let ranking = self.engine.ranking();
                let faults = self.engine.fault_plan();
                let Run { s1, s2, ctx1, ctx2, audit1, audit2, quorum, .. } = &mut **run;
                let quorum = *quorum;
                let (r1, r2) = std::thread::scope(|scope| {
                    let h1 = scope.spawn(|| {
                        server1_advance(
                            s1,
                            ctx1,
                            &prepared.roster,
                            prepared.num_classes,
                            prepared.seed1,
                            prepared.shard_seed,
                            ranking,
                            quorum,
                            state1,
                            audit1,
                            faults,
                        )
                    });
                    let h2 = scope.spawn(|| {
                        server2_advance(
                            s2,
                            ctx2,
                            &prepared.roster,
                            prepared.num_classes,
                            prepared.seed2,
                            prepared.shard_seed,
                            ranking,
                            quorum,
                            state2,
                            audit2,
                            faults,
                        )
                    });
                    (h1.join().expect("S1 step panicked"), h2.join().expect("S2 step panicked"))
                });
                // Same root-cause priority as the blocking path: an audit
                // conviction outranks everything, and a transport error is
                // usually the timeout the *other* side's failure induced.
                let advanced = match (r1, r2) {
                    (Ok(a), Ok(b)) => Ok((a, b)),
                    (Err(e @ SmcError::AuditFailure { .. }), _)
                    | (_, Err(e @ SmcError::AuditFailure { .. })) => Err(e),
                    (Err(SmcError::Transport(_)), Err(root)) => Err(root),
                    (Err(root), _) => Err(root),
                    (_, Err(root)) => Err(root),
                };
                match advanced {
                    Err(e) => {
                        self.phase = Phase::Finished;
                        SessionPoll::Failed(e)
                    }
                    Ok((next1, next2)) => {
                        if next1.is_terminal() {
                            assert!(
                                next2.is_terminal(),
                                "server pipelines must terminate in lockstep"
                            );
                            self.phase = Phase::Finished;
                            let outcome = self.engine.finalize_round(
                                &self.prepared,
                                next1,
                                next2,
                                &self.meter,
                                self.fault_stats_before,
                                0,
                                Vec::new(),
                            );
                            SessionPoll::Done(Box::new(outcome))
                        } else {
                            let step = next1.completed_step();
                            run.state1 = next1;
                            run.state2 = next2;
                            let beacon = SessionFrame {
                                session: self.session,
                                from: PartyId::Server1,
                                to: PartyId::User(self.prepared.roster[0]),
                                step,
                                seq: u64::from(step.ordinal()),
                                payload: Bytes::new(),
                            };
                            SessionPoll::Emit(vec![beacon])
                        }
                    }
                }
            }
            Phase::Finished => panic!("poll on a terminal session machine"),
        }
    }

    /// Builds the session's private micro-network and injects the
    /// collected upload payloads — per user, in canonical slot order, so
    /// each fresh link's sequence numbers reproduce the solo run's and
    /// any fault decisions keyed on `(from, to, step, seq)` fire
    /// identically.
    fn start_round(&self, frames: &[SessionFrame]) -> Result<Box<Run>, SmcError> {
        let mut net = self.engine.build_network(&self.meter, self.engine.fault_plan().cloned());
        let s1 = net.take_endpoint(PartyId::Server1);
        let s2 = net.take_endpoint(PartyId::Server2);
        for chunk in frames.chunks_exact(6) {
            let endpoint = net.take_endpoint(chunk[0].from);
            for frame in chunk {
                debug_assert_eq!(frame.from, chunk[0].from, "upload frames grouped per user");
                let ciphertexts = Vec::<Ciphertext>::from_bytes(frame.payload.clone())
                    .map_err(|e| SmcError::Transport(TransportError::Codec(e)))?;
                endpoint.send(frame.to, frame.step, &ciphertexts)?;
            }
        }
        let round_id = self.engine.next_audit_round();
        let (ctx1, ctx2) = self.engine.server_contexts();
        let quorum = self.engine.resilient().then(|| self.engine.quorum());
        let audit1 = AuditContext::new(self.engine.audit(), round_id, PartyId::Server1);
        let audit2 = AuditContext::new(self.engine.audit(), round_id, PartyId::Server2);
        Ok(Box::new(Run {
            _net: net,
            s1,
            s2,
            ctx1,
            ctx2,
            state1: RoundState::Start,
            state2: RoundState::Start,
            audit1,
            audit2,
            quorum,
        }))
    }
}

/// Why the reactor refused a session at admission.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The session table is at its configured capacity.
    CapacityExhausted {
        /// The configured cap the table is at.
        limit: usize,
    },
    /// Admitting the session could overshoot the epsilon budget even in
    /// the best case, counting the worst-case reservation of every
    /// in-flight session.
    BudgetExhausted {
        /// Epsilon still unreserved under the budget (never negative).
        remaining_epsilon: f64,
    },
    /// A session with this id is already live or already finished.
    DuplicateSession,
}

/// Typed admission refusal — overload is shed, never panicked on.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRejected {
    /// The refused session's id.
    pub session: u64,
    /// Why it was refused.
    pub reason: RejectReason,
}

impl fmt::Display for SessionRejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            RejectReason::CapacityExhausted { limit } => {
                write!(f, "session {} rejected: {limit} sessions already live", self.session)
            }
            RejectReason::BudgetExhausted { remaining_epsilon } => write!(
                f,
                "session {} rejected: ε budget exhausted ({remaining_epsilon} unreserved)",
                self.session
            ),
            RejectReason::DuplicateSession => {
                write!(f, "session {} rejected: id already in use", self.session)
            }
        }
    }
}

impl Error for SessionRejected {}

/// How one admitted session ended.
#[derive(Debug)]
pub enum SessionResult {
    /// Terminated cleanly with a cross-checked outcome.
    Done(Box<SecureOutcome>),
    /// Failed with a protocol error (crash, audit conviction, quorum
    /// loss, …) — isolated to this session.
    Failed(SmcError),
    /// Evicted by the deadline watchdog after stalling without progress.
    Evicted {
        /// How long the session had been stalled when evicted.
        stalled_for: Duration,
    },
}

/// Scheduler limits.
#[derive(Debug, Clone, Copy)]
pub struct ReactorConfig {
    /// Hard cap on concurrently live sessions; admissions past it are
    /// shed with [`RejectReason::CapacityExhausted`].
    pub max_sessions: usize,
    /// Per-session progress deadline: a session that makes no progress
    /// for this long is evicted by the watchdog.
    pub deadline: Duration,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig { max_sessions: 256, deadline: Duration::from_secs(5) }
    }
}

/// Optional RDP budget gate over admissions and completions.
struct BudgetGate {
    ledger: RdpLedger,
    budget_epsilon: f64,
    delta: f64,
    worst_case: LinearRdp,
}

struct SessionEntry {
    machine: SessionMachine,
    admitted_at: Instant,
    last_progress: Instant,
}

/// The session table and scheduler loop. See the [module docs](self).
pub struct Reactor {
    config: ReactorConfig,
    meter: Arc<Meter>,
    demux: SessionDemux,
    sessions: HashMap<u64, SessionEntry>,
    run_queue: VecDeque<u64>,
    results: HashMap<u64, SessionResult>,
    latencies: Vec<(u64, Duration)>,
    outbox: Vec<SessionFrame>,
    budget: Option<BudgetGate>,
}

impl fmt::Debug for Reactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reactor({} live, {} finished)", self.sessions.len(), self.results.len())
    }
}

impl Reactor {
    /// An empty reactor recording its session counters on `meter`.
    pub fn new(config: ReactorConfig, meter: Arc<Meter>) -> Reactor {
        Reactor {
            config,
            meter,
            demux: SessionDemux::new(),
            sessions: HashMap::new(),
            run_queue: VecDeque::new(),
            results: HashMap::new(),
            latencies: Vec::new(),
            outbox: Vec::new(),
            budget: None,
        }
    }

    /// Attaches an RDP budget: admission reserves `worst_case` for every
    /// in-flight session against `budget_epsilon` at `delta`, and each
    /// completed session is charged its realized cost exactly once.
    pub fn with_budget(
        mut self,
        budget_epsilon: f64,
        delta: f64,
        worst_case: LinearRdp,
    ) -> Reactor {
        self.budget =
            Some(BudgetGate { ledger: RdpLedger::new(), budget_epsilon, delta, worst_case });
        self
    }

    /// The shared meter the session counters accumulate on.
    pub fn meter(&self) -> &Arc<Meter> {
        &self.meter
    }

    /// Number of currently live (admitted, not yet terminal) sessions.
    pub fn live_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// The budget ledger, when a budget gate is attached.
    pub fn ledger(&self) -> Option<&RdpLedger> {
        self.budget.as_ref().map(|g| &g.ledger)
    }

    /// Admits `machine` into the session table, or sheds it with a typed
    /// [`SessionRejected`]. Records `sessions admitted` / `sessions
    /// rejected` on the meter either way.
    ///
    /// # Errors
    ///
    /// [`RejectReason::DuplicateSession`] for a reused id,
    /// [`RejectReason::CapacityExhausted`] past the session cap,
    /// [`RejectReason::BudgetExhausted`] when the worst-case spend of
    /// this session plus every in-flight one no longer fits the budget.
    pub fn admit(&mut self, machine: SessionMachine) -> Result<u64, SessionRejected> {
        let session = machine.session();
        let reject = |meter: &Meter, reason| {
            meter.record_fault(FaultEvent::SessionRejected);
            Err(SessionRejected { session, reason })
        };
        if self.sessions.contains_key(&session) || self.results.contains_key(&session) {
            return reject(&self.meter, RejectReason::DuplicateSession);
        }
        if self.sessions.len() >= self.config.max_sessions {
            return reject(
                &self.meter,
                RejectReason::CapacityExhausted { limit: self.config.max_sessions },
            );
        }
        if let Some(gate) = &self.budget {
            // Reserve the worst case for every admitted-but-uncharged
            // session too: concurrent sessions must not jointly overshoot.
            let reserved = gate.worst_case.repeat(self.sessions.len() as u64 + 1);
            let spent = gate.ledger.total().unwrap_or_else(LinearRdp::zero);
            if spent.compose(&reserved).to_epsilon(gate.delta) > gate.budget_epsilon {
                let already = spent.compose(&gate.worst_case.repeat(self.sessions.len() as u64));
                let remaining = (gate.budget_epsilon - already.to_epsilon(gate.delta)).max(0.0);
                return reject(
                    &self.meter,
                    RejectReason::BudgetExhausted { remaining_epsilon: remaining },
                );
            }
        }
        self.demux.register(session);
        let now = Instant::now();
        self.sessions
            .insert(session, SessionEntry { machine, admitted_at: now, last_progress: now });
        self.run_queue.push_back(session);
        self.meter.record_fault(FaultEvent::SessionAdmitted);
        Ok(session)
    }

    /// Routes one session-tagged frame toward its session's queue.
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownSession`] for a session never admitted or
    /// already finished — typed, never a panic.
    pub fn ingest(&mut self, frame: SessionFrame) -> Result<(), SessionError> {
        self.demux.route(frame)
    }

    /// Decodes raw bytes off a shared link and routes the frame.
    ///
    /// # Errors
    ///
    /// [`SessionError::Codec`] on malformed bytes, otherwise as
    /// [`Reactor::ingest`].
    pub fn ingest_encoded(&mut self, bytes: Bytes) -> Result<u64, SessionError> {
        self.demux.decode_and_route(bytes)
    }

    /// Drives every live session until all are terminal, servicing them
    /// round-robin with one poll per session per sweep. Sessions blocked
    /// on frames that never arrive are evicted once their progress
    /// deadline lapses, so the call always returns. Returns the number
    /// of machine polls performed.
    pub fn run_until_idle(&mut self) -> usize {
        let mut polls = 0;
        loop {
            let mut progressed = false;
            for _ in 0..self.run_queue.len() {
                let Some(sid) = self.run_queue.pop_front() else { break };
                let Some(entry) = self.sessions.get(&sid) else { continue };
                // Watchdog: evict before polling, without touching any
                // neighbor session.
                let stalled_for = entry.last_progress.elapsed();
                if stalled_for > self.config.deadline {
                    self.sessions.remove(&sid);
                    self.demux.retire(sid);
                    self.meter.record_fault(FaultEvent::SessionEvicted);
                    self.results.insert(sid, SessionResult::Evicted { stalled_for });
                    progressed = true;
                    continue;
                }
                let frame = self.demux.next_frame(sid);
                let had_frame = frame.is_some();
                let entry = self.sessions.get_mut(&sid).expect("entry checked above");
                if !had_frame && entry.machine.is_collecting() {
                    // Blocked: nothing to feed it. Stays queued for the
                    // next sweep (or the watchdog).
                    self.run_queue.push_back(sid);
                    continue;
                }
                polls += 1;
                match entry.machine.poll(frame) {
                    SessionPoll::NeedMore => {
                        entry.last_progress = Instant::now();
                        progressed = true;
                        self.run_queue.push_back(sid);
                    }
                    SessionPoll::Emit(frames) => {
                        entry.last_progress = Instant::now();
                        self.outbox.extend(frames);
                        progressed = true;
                        self.run_queue.push_back(sid);
                    }
                    SessionPoll::Done(outcome) => {
                        let entry = self.sessions.remove(&sid).expect("entry live");
                        self.demux.retire(sid);
                        if let Some(gate) = &mut self.budget {
                            // Exactly once per session id, by construction
                            // of the ledger.
                            gate.ledger.charge(sid, outcome.health.charged_rdp());
                        }
                        self.latencies.push((sid, entry.admitted_at.elapsed()));
                        self.results.insert(sid, SessionResult::Done(outcome));
                        progressed = true;
                    }
                    SessionPoll::Failed(e) => {
                        self.sessions.remove(&sid);
                        self.demux.retire(sid);
                        self.results.insert(sid, SessionResult::Failed(e));
                        progressed = true;
                    }
                }
            }
            if self.sessions.is_empty() {
                break;
            }
            if !progressed {
                // Everything live is blocked on missing frames. Sleep to
                // the earliest watchdog deadline; the next sweep evicts.
                let wait = self
                    .sessions
                    .values()
                    .map(|e| self.config.deadline.saturating_sub(e.last_progress.elapsed()))
                    .min()
                    .unwrap_or_default();
                std::thread::sleep(wait + Duration::from_millis(1));
            }
        }
        polls
    }

    /// Takes the result of a finished session, if it finished.
    pub fn take_result(&mut self, session: u64) -> Option<SessionResult> {
        self.results.remove(&session)
    }

    /// Ids of every finished session (any [`SessionResult`] variant).
    pub fn finished_sessions(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.results.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Admission→completion latency of every session that finished
    /// [`SessionResult::Done`], in completion order.
    pub fn latencies(&self) -> &[(u64, Duration)] {
        &self.latencies
    }

    /// Drains the outbound progress beacons emitted since the last call.
    pub fn drain_outbox(&mut self) -> Vec<SessionFrame> {
        std::mem::take(&mut self.outbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_reasons_render() {
        let cap =
            SessionRejected { session: 7, reason: RejectReason::CapacityExhausted { limit: 2 } };
        assert!(cap.to_string().contains("2 sessions already live"));
        let bud = SessionRejected {
            session: 8,
            reason: RejectReason::BudgetExhausted { remaining_epsilon: 0.25 },
        };
        assert!(bud.to_string().contains("budget exhausted"));
        let dup = SessionRejected { session: 9, reason: RejectReason::DuplicateSession };
        assert!(dup.to_string().contains("already in use"));
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ReactorConfig::default();
        assert!(cfg.max_sessions > 0);
        assert!(cfg.deadline > Duration::ZERO);
    }
}
