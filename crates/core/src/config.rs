//! Protocol configuration and fixed-point scaling.

use serde::{Deserialize, Serialize};

/// Fixed-point scale for votes and noise: `2^16`, matching the paper's
/// Eqn. 8 precision.
pub const VOTE_SCALE: f64 = 65536.0;

/// What each teacher submits per query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VoteKind {
    /// A one-hot indicator of the predicted class (the paper's default).
    OneHot,
    /// The softmax probability vector (Fig. 4's alternative).
    Softmax,
}

/// Configuration of one consensus deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsensusConfig {
    /// Threshold as a fraction of the user count (the paper's default is
    /// 60%: consensus requires > 0.6·|U| votes).
    pub threshold_fraction: f64,
    /// Noise scale of the Sparse Vector threshold test, in votes.
    pub sigma1: f64,
    /// Noise scale of Report Noisy Max, in votes.
    pub sigma2: f64,
    /// Vote representation.
    pub vote_kind: VoteKind,
    /// Quorum for dropout-resilient rounds: the minimum number of users
    /// whose uploads must survive a collection step for the round to
    /// continue. `None` keeps the strict protocol, where any user
    /// failure fails the round.
    pub min_users: Option<usize>,
}

impl ConsensusConfig {
    /// Creates a config with one-hot votes.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_fraction` is outside `(0, 1]` or a sigma is
    /// negative.
    pub fn new(threshold_fraction: f64, sigma1: f64, sigma2: f64) -> Self {
        assert!(
            threshold_fraction > 0.0 && threshold_fraction <= 1.0,
            "threshold fraction must be in (0, 1]"
        );
        assert!(sigma1 >= 0.0 && sigma2 >= 0.0, "noise scales must be non-negative");
        ConsensusConfig {
            threshold_fraction,
            sigma1,
            sigma2,
            vote_kind: VoteKind::OneHot,
            min_users: None,
        }
    }

    /// The paper's default: 60% threshold.
    pub fn paper_default(sigma1: f64, sigma2: f64) -> Self {
        ConsensusConfig::new(0.6, sigma1, sigma2)
    }

    /// Switches to softmax votes.
    #[must_use]
    pub fn with_vote_kind(mut self, kind: VoteKind) -> Self {
        self.vote_kind = kind;
        self
    }

    /// Enables dropout-resilient rounds with the given quorum: a round
    /// proceeds over the surviving set `U' ⊆ U` as long as
    /// `|U'| ≥ min_users`, and aborts with a typed error below that.
    ///
    /// # Panics
    ///
    /// Panics if `min_users` is zero.
    #[must_use]
    pub fn with_min_users(mut self, min_users: usize) -> Self {
        assert!(min_users > 0, "quorum must be at least one user");
        self.min_users = Some(min_users);
        self
    }

    /// The vote threshold `T` for `num_users` participants, in votes.
    pub fn threshold_votes(&self, num_users: usize) -> f64 {
        self.threshold_fraction * num_users as f64
    }

    /// The `(ε, δ)` guarantee of `k` queries under this config
    /// (Theorem 5 + composition).
    ///
    /// # Panics
    ///
    /// Panics if a sigma is zero (infinite privacy loss) or `delta` is
    /// outside `(0, 1)`.
    pub fn epsilon(&self, k: u64, delta: f64) -> f64 {
        dp::rdp::LinearRdp::sparse_vector(self.sigma1)
            .compose(&dp::rdp::LinearRdp::report_noisy_max(self.sigma2))
            .repeat(k)
            .to_epsilon(delta)
    }
}

/// Scales a vote-unit quantity to the fixed-point integer grid.
pub fn scale_votes(v: f64) -> i64 {
    (v * VOTE_SCALE).round() as i64
}

/// Inverse of [`scale_votes`] (also valid on sums).
pub fn unscale_votes(v: i128) -> f64 {
    v as f64 / VOTE_SCALE
}

/// Scales a whole vote vector.
pub fn scale_vote_vector(votes: &[f64]) -> Vec<i64> {
    votes.iter().map(|&v| scale_votes(v)).collect()
}

/// Splits `total` as evenly as possible into `parts` integer pieces that
/// sum exactly to `total` (used for the per-user threshold offsets
/// `T/(2|U|)` of Alg. 5, which must recombine without rounding error).
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn split_evenly(total: i64, parts: usize) -> Vec<i64> {
    assert!(parts > 0, "cannot split into zero parts");
    let base = total.div_euclid(parts as i64);
    let rem = total.rem_euclid(parts as i64) as usize;
    (0..parts).map(|i| base + i64::from(i < rem)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_votes_scale_with_users() {
        let c = ConsensusConfig::paper_default(40.0, 40.0);
        assert_eq!(c.threshold_votes(100), 60.0);
        assert_eq!(c.threshold_votes(25), 15.0);
    }

    #[test]
    fn scaling_roundtrip() {
        for v in [0.0, 1.0, -2.5, 0.125, 100.0] {
            assert!((unscale_votes(scale_votes(v) as i128) - v).abs() < 1e-4);
        }
        assert_eq!(scale_votes(1.0), 65536);
    }

    #[test]
    fn split_evenly_sums_exactly() {
        for (total, parts) in [(100i64, 7usize), (0, 3), (-50, 4), (65536 * 60, 200)] {
            let pieces = split_evenly(total, parts);
            assert_eq!(pieces.len(), parts);
            assert_eq!(pieces.iter().sum::<i64>(), total, "total {total} parts {parts}");
            let max = pieces.iter().max().unwrap();
            let min = pieces.iter().min().unwrap();
            assert!(max - min <= 1, "pieces must differ by at most 1");
        }
    }

    #[test]
    fn epsilon_composes() {
        let c = ConsensusConfig::paper_default(40.0, 40.0);
        let one = c.epsilon(1, 1e-6);
        let ten = c.epsilon(10, 1e-6);
        assert!(ten > one);
        assert!(ten < 10.0 * one, "RDP composition beats naive scaling");
    }

    #[test]
    #[should_panic(expected = "threshold fraction")]
    fn bad_threshold_rejected() {
        let _ = ConsensusConfig::new(1.5, 1.0, 1.0);
    }

    #[test]
    fn vote_kind_builder() {
        let c = ConsensusConfig::paper_default(1.0, 1.0).with_vote_kind(VoteKind::Softmax);
        assert_eq!(c.vote_kind, VoteKind::Softmax);
    }
}
