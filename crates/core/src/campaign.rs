//! Budget-gated labeling campaigns — from the in-memory clear-path
//! [`Campaign`] to the durable [`CampaignRunner`] daemon that drives the
//! *secure* engine across process restarts.
//!
//! The experiment pipeline answers a fixed number of queries and reports
//! the privacy spent; a *deployment* works the other way around — it is
//! given an `(ε, δ)` budget and must stop querying before exceeding it.
//! Two runtimes implement that contract:
//!
//! * [`Campaign`] wraps the clear-path engine with a
//!   [`dp::PrivacyLedger`] so every threshold decision is recorded and
//!   the next query is issued only if it still fits the budget. It lives
//!   entirely in memory — one process, one sitting.
//! * [`CampaignRunner`] is the long-running form over the full secure
//!   pipeline: rounds run through [`RoundSupervisor`] with durable
//!   checkpoints, every realized RDP charge lands in a crash-safe
//!   [`DurableRdpLedger`] *before* the next round is admitted, and a
//!   restarted daemon replays its instance queue deterministically — the
//!   ledger deduplicates charges by round id, so epsilon resumes at the
//!   exact value spent and the released-label sequence is bit-identical
//!   to an uninterrupted run.
//!
//! The runner also models a living deployment: a standing roster with
//! join/leave/crash events between rounds (session keys are rebuilt only
//! when membership actually changes), degraded rounds that complete on
//! the surviving cohort at honestly recalibrated noise scales, a bounded
//! retry budget per instance before the instance is parked, and a typed
//! [`CampaignStall`] stop with a backoff hint when quorum is repeatedly
//! lost. Per-round cost telemetry ([`RoundCost`]) splits communication
//! from computation and tracks the epsilon trajectory for the bench
//! gate.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dp::ledger::{DurableRdpLedger, LedgerError};
use dp::rdp::LinearRdp;
use dp::PrivacyLedger;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smc::shard::recalibrate_sigma;
use smc::{SessionConfig, SessionKeys, ShardConfig, SmcError};
use transport::{
    CheckpointError, CheckpointStore, FaultPlan, FaultStats, FileCheckpointStore, LinkKind, Meter,
    MeterReport, TimeoutPolicy,
};

use crate::clear::ClearEngine;
use crate::config::ConsensusConfig;
use crate::recovery::RoundSupervisor;

/// Typed failures of campaign construction and execution.
///
/// Configuration mistakes that used to panic — zero noise scales
/// (infinite spend), non-positive budgets, out-of-range deltas — are
/// ordinary recoverable errors for a daemon that reads its parameters
/// from the outside world.
#[derive(Debug)]
pub enum CampaignError {
    /// A noise scale is zero, negative, or non-finite: every query would
    /// cost infinite privacy budget.
    ZeroNoiseScale {
        /// The configured Sparse Vector noise scale.
        sigma1: f64,
        /// The configured Report Noisy Max noise scale.
        sigma2: f64,
    },
    /// The epsilon budget is not a positive finite number.
    NonPositiveBudget(f64),
    /// `delta` is outside the open interval `(0, 1)`.
    InvalidDelta(f64),
    /// The campaign would start — or a roster event would leave it —
    /// with no users.
    EmptyRoster {
        /// The instance index the roster emptied before (0 = at start).
        at_instance: usize,
    },
    /// A leave/crash event removes at least as many users as remain.
    RosterUnderflow {
        /// The instance index the event was scheduled before.
        at_instance: usize,
        /// Members present when the event fired.
        members: usize,
        /// Members the event tried to remove.
        leaving: usize,
    },
    /// An instance supplies fewer vote vectors than the roster has
    /// members.
    VoteShape {
        /// The offending instance index.
        instance: usize,
        /// Vote vectors supplied.
        rows: usize,
        /// Current roster size.
        members: usize,
    },
    /// The durable RDP ledger failed to open, replay, or append.
    Ledger(LedgerError),
    /// The round checkpoint store failed to open.
    Checkpoint(CheckpointError),
    /// A round died with a failure retries cannot fix: a vote-shape or
    /// protocol violation, a cryptographic failure, an audit conviction.
    /// Only the typed liveness aborts — [`SmcError::QuorumLost`] and its
    /// strict-path twin [`SmcError::Transport`] — burn retries and park;
    /// everything else surfaces here instead of masquerading as a stall.
    Round {
        /// The instance whose round failed.
        instance: usize,
        /// The underlying protocol failure.
        source: SmcError,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::ZeroNoiseScale { sigma1, sigma2 } => write!(
                f,
                "noise scales must be positive and finite (sigma1 = {sigma1}, sigma2 = {sigma2})"
            ),
            CampaignError::NonPositiveBudget(b) => {
                write!(f, "epsilon budget must be positive and finite (got {b})")
            }
            CampaignError::InvalidDelta(d) => write!(f, "delta must lie in (0, 1) (got {d})"),
            CampaignError::EmptyRoster { at_instance } => {
                write!(f, "roster is empty before instance {at_instance}")
            }
            CampaignError::RosterUnderflow { at_instance, members, leaving } => write!(
                f,
                "roster event before instance {at_instance} removes {leaving} of {members} members"
            ),
            CampaignError::VoteShape { instance, rows, members } => write!(
                f,
                "instance {instance} supplies {rows} vote vectors for a roster of {members}"
            ),
            CampaignError::Ledger(e) => write!(f, "durable ledger: {e}"),
            CampaignError::Checkpoint(e) => write!(f, "checkpoint store: {e}"),
            CampaignError::Round { instance, source } => {
                write!(f, "instance {instance}: unrecoverable round failure: {source}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<LedgerError> for CampaignError {
    fn from(e: LedgerError) -> Self {
        CampaignError::Ledger(e)
    }
}

impl From<CheckpointError> for CampaignError {
    fn from(e: CheckpointError) -> Self {
        CampaignError::Checkpoint(e)
    }
}

/// Validates the `(σ₁, σ₂, ε, δ)` quadruple every campaign needs.
fn validate_budget_params(
    config: &ConsensusConfig,
    budget_epsilon: f64,
    delta: f64,
) -> Result<(), CampaignError> {
    let sigma_ok = |s: f64| s > 0.0 && s.is_finite();
    if !sigma_ok(config.sigma1) || !sigma_ok(config.sigma2) {
        return Err(CampaignError::ZeroNoiseScale { sigma1: config.sigma1, sigma2: config.sigma2 });
    }
    if !(budget_epsilon > 0.0 && budget_epsilon.is_finite()) {
        return Err(CampaignError::NonPositiveBudget(budget_epsilon));
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err(CampaignError::InvalidDelta(delta));
    }
    Ok(())
}

/// Why a campaign stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// All provided instances were queried.
    InstancesExhausted,
    /// The next query would exceed the ε budget.
    BudgetExhausted,
}

/// Outcome of a budget-gated campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// `(instance index, released label)` pairs, in query order.
    pub released: Vec<(usize, usize)>,
    /// Number of queries issued (answered + aborted).
    pub queried: usize,
    /// Why the campaign stopped.
    pub stop_reason: StopReason,
    /// Final privacy spend.
    pub epsilon_spent: f64,
}

/// A consensus labeling campaign under a hard `(ε, δ)` budget.
#[derive(Debug, Clone)]
pub struct Campaign {
    engine: ClearEngine,
    ledger: PrivacyLedger,
    budget_epsilon: f64,
}

impl Campaign {
    /// Creates a campaign for `num_users` voters over `num_classes`
    /// classes with the given budget.
    ///
    /// # Errors
    ///
    /// [`CampaignError::ZeroNoiseScale`] when a noise scale is zero,
    /// negative, or non-finite (infinite spend),
    /// [`CampaignError::NonPositiveBudget`] when the budget is not a
    /// positive finite number, and [`CampaignError::InvalidDelta`] when
    /// `delta` is outside `(0, 1)`.
    pub fn new(
        config: ConsensusConfig,
        num_users: usize,
        num_classes: usize,
        budget_epsilon: f64,
        delta: f64,
    ) -> Result<Self, CampaignError> {
        validate_budget_params(&config, budget_epsilon, delta)?;
        Ok(Campaign {
            engine: ClearEngine::new(config, num_users, num_classes),
            ledger: PrivacyLedger::new(config.sigma1, config.sigma2, delta),
            budget_epsilon,
        })
    }

    /// The ε spent so far.
    pub fn epsilon_spent(&self) -> f64 {
        self.ledger.epsilon()
    }

    /// Whether another query fits the budget.
    pub fn can_query(&self) -> bool {
        self.ledger.can_afford(self.budget_epsilon)
    }

    /// Runs one query if the budget allows. Returns `None` if the budget
    /// is exhausted, `Some(None)` for a threshold rejection, and
    /// `Some(Some(label))` for a release.
    ///
    /// # Panics
    ///
    /// Panics if the vote matrix shape disagrees with the engine.
    pub fn query<R: Rng + ?Sized>(
        &mut self,
        votes: &[Vec<f64>],
        rng: &mut R,
    ) -> Option<Option<usize>> {
        if !self.can_query() {
            return None;
        }
        let outcome = self.engine.decide(votes, rng);
        match outcome.label {
            Some(label) => {
                self.ledger.record_answered();
                Some(Some(label))
            }
            None => {
                // Conservative convention (paper): aborts charge full cost.
                self.ledger.record_answered();
                Some(None)
            }
        }
    }

    /// Queries a whole instance list (each entry: per-user vote vectors),
    /// stopping at budget exhaustion.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        instances: &[Vec<Vec<f64>>],
        rng: &mut R,
    ) -> CampaignOutcome {
        let mut released = Vec::new();
        let mut queried = 0;
        let mut stop_reason = StopReason::InstancesExhausted;
        for (idx, votes) in instances.iter().enumerate() {
            match self.query(votes, rng) {
                None => {
                    stop_reason = StopReason::BudgetExhausted;
                    break;
                }
                Some(answer) => {
                    queried += 1;
                    if let Some(label) = answer {
                        released.push((idx, label));
                    }
                }
            }
        }
        CampaignOutcome { released, queried, stop_reason, epsilon_spent: self.ledger.epsilon() }
    }
}

/// A membership change applied to the standing roster between rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RosterChange {
    /// `n` new users join before the instance.
    Join(usize),
    /// `n` users announce departure and leave gracefully.
    Leave(usize),
    /// `n` users vanish without announcement — operationally identical
    /// to a leave (the next epoch excludes them), but counted separately
    /// in the report because unplanned churn is the signal an operator
    /// watches.
    Crash(usize),
}

/// A scheduled [`RosterChange`], applied before the given instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RosterEvent {
    /// Queue position the change takes effect before.
    pub before_instance: usize,
    /// The membership change.
    pub change: RosterChange,
}

impl RosterEvent {
    /// Convenience constructor.
    pub fn new(before_instance: usize, change: RosterChange) -> Self {
        RosterEvent { before_instance, change }
    }
}

/// The campaign lost quorum on enough consecutive instances that
/// continuing immediately is pointless: the daemon should back off and
/// re-run later (a restarted runner resumes exactly, so stopping is
/// cheap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignStall {
    /// The instance the stall was declared at.
    pub at_instance: usize,
    /// Consecutive instances that exhausted their retry budget.
    pub consecutive_failures: usize,
    /// Suggested wait before the next attempt (exponential in the
    /// failure streak, capped).
    pub backoff: Duration,
}

/// Why a [`CampaignRunner::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CampaignStop {
    /// Every queued instance was processed (answered or parked).
    InstancesExhausted,
    /// Admission control refused the next round: even its *worst-case*
    /// realized spend would push the composed epsilon past the budget.
    BudgetExhausted {
        /// The instance whose round was refused.
        refused_instance: usize,
        /// The composed epsilon the refused round could have reached.
        worst_case_epsilon: f64,
    },
    /// Quorum was lost on too many consecutive instances.
    Stalled(CampaignStall),
}

/// Per-round cost telemetry: the computation/communication split, the
/// epsilon trajectory, and the degradation counters — one row per
/// *successful* round, appendable as a JSON time series.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundCost {
    /// Logical round id (stable across restarts).
    pub round: u64,
    /// Queue position of the instance this round answered.
    pub instance: usize,
    /// Roster size the round was launched with.
    pub members: usize,
    /// Users whose uploads survived the collection step.
    pub survivors: usize,
    /// The released label (`None` = threshold rejection).
    pub label: Option<usize>,
    /// Whether this execution actually appended the charge (`false` when
    /// a restarted daemon replayed an already-charged round).
    pub charged: bool,
    /// Epsilon of this round's realized RDP curve alone.
    pub epsilon_round: f64,
    /// Composed epsilon over all charged rounds after this one.
    pub epsilon_total: f64,
    /// Wall time of the round, milliseconds.
    pub wall_ms: f64,
    /// Metered computation time inside protocol steps, milliseconds.
    pub compute_ms: f64,
    /// Bytes on user→server links this round.
    pub user_bytes: u64,
    /// Bytes on server↔server and server→user links this round.
    pub server_bytes: u64,
    /// Messages across all links this round.
    pub messages: u64,
    /// Checkpoint resumptions the round needed (0 = uninterrupted).
    pub resumptions: u64,
    /// Aggregation shards whose whole membership dropped this round.
    pub shards_dropped: u64,
}

impl RoundCost {
    /// Renders the row as a single JSON object (hand-rolled — the
    /// workspace has no JSON serializer dependency).
    pub fn to_json(&self) -> String {
        let label = self.label.map_or_else(|| "null".to_string(), |l| l.to_string());
        format!(
            "{{\"round\":{},\"instance\":{},\"members\":{},\"survivors\":{},\"label\":{label},\
             \"charged\":{},\"epsilon_round\":{:.6},\"epsilon_total\":{:.6},\"wall_ms\":{:.3},\
             \"compute_ms\":{:.3},\"user_bytes\":{},\"server_bytes\":{},\"messages\":{},\
             \"resumptions\":{},\"shards_dropped\":{}}}",
            self.round,
            self.instance,
            self.members,
            self.survivors,
            self.charged,
            self.epsilon_round,
            self.epsilon_total,
            self.wall_ms,
            self.compute_ms,
            self.user_bytes,
            self.server_bytes,
            self.messages,
            self.resumptions,
            self.shards_dropped,
        )
    }
}

/// Everything a [`CampaignRunner`] needs besides its directory.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Consensus parameters (noise scales, threshold, quorum).
    pub consensus: ConsensusConfig,
    /// Roster size at campaign start.
    pub initial_users: usize,
    /// Number of classes per query.
    pub num_classes: usize,
    /// Hard epsilon budget the durable ledger enforces.
    pub budget_epsilon: f64,
    /// The δ of the `(ε, δ)` guarantee.
    pub delta: f64,
    /// Campaign seed: all randomness (keys per epoch, per-instance round
    /// randomness) derives from it, so a restart replays identically.
    pub seed: u64,
    /// Aggregation shards per server (≤ 1 = flat).
    pub num_shards: usize,
    /// Checkpoint-resume attempts per round (see
    /// [`RoundSupervisor::with_max_attempts`]).
    pub max_attempts: usize,
    /// Extra fresh-randomness tries per instance after the supervisor
    /// gives up, before the instance is parked.
    pub instance_retries: usize,
    /// Consecutive parked instances before the run stops with
    /// [`CampaignStop::Stalled`].
    pub stall_threshold: usize,
    /// Base of the exponential backoff hint in [`CampaignStall`].
    pub backoff_base: Duration,
}

impl CampaignConfig {
    /// A config with the default resilience knobs: 4 resume attempts per
    /// round, 1 retry per instance, stall after 3 consecutive parks,
    /// 100 ms backoff base, flat aggregation, seed 0.
    pub fn new(
        consensus: ConsensusConfig,
        initial_users: usize,
        num_classes: usize,
        budget_epsilon: f64,
        delta: f64,
    ) -> Self {
        CampaignConfig {
            consensus,
            initial_users,
            num_classes,
            budget_epsilon,
            delta,
            seed: 0,
            num_shards: 1,
            max_attempts: 4,
            instance_retries: 1,
            stall_threshold: 3,
            backoff_base: Duration::from_millis(100),
        }
    }

    /// Sets the campaign seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects sharded streaming aggregation.
    #[must_use]
    pub fn with_shards(mut self, num_shards: usize) -> Self {
        self.num_shards = num_shards;
        self
    }

    /// Sets the per-round checkpoint-resume attempt cap.
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Sets the per-instance retry budget before parking.
    #[must_use]
    pub fn with_instance_retries(mut self, retries: usize) -> Self {
        self.instance_retries = retries;
        self
    }

    /// Sets how many consecutive parked instances declare a stall.
    #[must_use]
    pub fn with_stall_threshold(mut self, threshold: usize) -> Self {
        self.stall_threshold = threshold.max(1);
        self
    }
}

/// Result of one [`CampaignRunner::run`] call.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// `(instance index, released label)` pairs, in query order.
    pub released: Vec<(usize, usize)>,
    /// One telemetry row per successful round, in round order.
    pub rounds: Vec<RoundCost>,
    /// Instances that exhausted their retry budget and were set aside.
    pub parked: Vec<usize>,
    /// Instances processed (successful rounds + parked instances).
    pub queried: usize,
    /// Why the run returned.
    pub stop: CampaignStop,
    /// Composed epsilon over every charged round, including rounds from
    /// earlier lifetimes of the same campaign directory.
    pub epsilon_spent: f64,
    /// Users that joined via roster events during the run.
    pub joins: u64,
    /// Users that left gracefully during the run.
    pub leaves: u64,
    /// Users that crashed out during the run.
    pub crashes: u64,
}

impl CampaignReport {
    /// All telemetry rows as JSON lines, ready to append to a time
    /// series file.
    pub fn telemetry_json(&self) -> Vec<String> {
        self.rounds.iter().map(RoundCost::to_json).collect()
    }
}

/// Mixes a campaign seed with a stream tag and an index into an RNG
/// seed (splitmix64 finalizer — cheap, stateless, restart-stable).
fn mix(seed: u64, tag: u64, v: u64) -> u64 {
    let mut x =
        seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Sums a meter report into `(user bytes, server bytes, messages)`.
fn link_totals(report: &MeterReport) -> (u64, u64, u64) {
    let mut user = 0u64;
    let mut server = 0u64;
    let mut messages = 0u64;
    for (_, link, stats) in report.comm_rows() {
        match link {
            LinkKind::UserToServer => user += stats.bytes,
            LinkKind::ServerToServer | LinkKind::ServerToUser => server += stats.bytes,
        }
        messages += stats.messages;
    }
    (user, server, messages)
}

/// A durable labeling-campaign daemon over the secure engine.
///
/// The runner owns a campaign *directory*: the crash-safe RDP ledger
/// lives at `<dir>/ledger.rdp` and round checkpoints under
/// `<dir>/checkpoints`. Killing the process at any point and reopening
/// the same directory resumes the campaign: [`CampaignRunner::run`]
/// replays the instance queue deterministically (all randomness derives
/// from the campaign seed and queue position), already-charged rounds
/// re-execute only to reproduce their labels — the ledger refuses the
/// duplicate charge — and admission control picks up at the exact
/// epsilon spent.
///
/// **Budget invariant**: a round is admitted only if its *worst-case*
/// realized spend — the charge at the smallest cohort quorum allows,
/// where dropouts shrink the realized noise — still fits the budget
/// when composed with everything already charged. The durable total can
/// therefore never exceed the budget, no matter how ragged the round.
pub struct CampaignRunner {
    config: CampaignConfig,
    dir: PathBuf,
    ledger: DurableRdpLedger,
    events: Vec<RosterEvent>,
    faults: Option<FaultPlan>,
    timeout: Option<TimeoutPolicy>,
}

impl CampaignRunner {
    /// Opens (or creates) the campaign rooted at `dir`, replaying the
    /// durable ledger.
    ///
    /// # Errors
    ///
    /// Configuration errors ([`CampaignError::ZeroNoiseScale`],
    /// [`CampaignError::NonPositiveBudget`],
    /// [`CampaignError::InvalidDelta`], [`CampaignError::EmptyRoster`])
    /// and ledger open/replay failures ([`CampaignError::Ledger`]).
    pub fn open(dir: impl AsRef<Path>, config: CampaignConfig) -> Result<Self, CampaignError> {
        validate_budget_params(&config.consensus, config.budget_epsilon, config.delta)?;
        if config.initial_users == 0 {
            return Err(CampaignError::EmptyRoster { at_instance: 0 });
        }
        let dir = dir.as_ref().to_path_buf();
        let ledger = DurableRdpLedger::open(&dir, config.budget_epsilon, config.delta)?;
        Ok(CampaignRunner { config, dir, ledger, events: Vec::new(), faults: None, timeout: None })
    }

    /// Schedules roster churn. Events fire before the instance they
    /// name; several events before the same instance apply in order.
    #[must_use]
    pub fn with_roster_events(mut self, events: Vec<RosterEvent>) -> Self {
        self.events = events;
        self
    }

    /// Injects a transport fault plan into every epoch's engine.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Overrides the engines' receive-timeout policy.
    #[must_use]
    pub fn with_timeout(mut self, policy: TimeoutPolicy) -> Self {
        self.timeout = Some(policy);
        self
    }

    /// The durable ledger backing this campaign.
    pub fn ledger(&self) -> &DurableRdpLedger {
        &self.ledger
    }

    /// Composed epsilon over every charged round so far (survives
    /// restarts).
    pub fn epsilon_spent(&self) -> f64 {
        self.ledger.epsilon_spent()
    }

    /// Builds the engine for one membership epoch. Key material is a
    /// deterministic function of (seed, epoch), so a restarted daemon
    /// regenerates identical sessions.
    fn build_engine(&self, epoch: u64, members: usize) -> crate::secure::SecureEngine {
        let mut session = SessionConfig::test(members, self.config.num_classes);
        if self.config.num_shards > 1 {
            session = session.with_shards(ShardConfig::new(self.config.num_shards));
        }
        let mut rng = StdRng::seed_from_u64(mix(self.config.seed, 0xE90C_11AD, epoch));
        let keys = SessionKeys::generate(session, &mut rng);
        let mut engine = crate::secure::SecureEngine::with_keys(keys, self.config.consensus);
        if let Some(timeout) = self.timeout {
            engine = engine.with_timeout(timeout);
        }
        if let Some(plan) = &self.faults {
            engine = engine.with_fault_plan(plan.clone());
        }
        engine
    }

    /// The largest RDP charge a round over `members` users can realize:
    /// the charge at the smallest cohort quorum admits. Dropouts shrink
    /// the realized noise, so the *minimum* surviving cohort maximizes
    /// the spend — admission must budget for it.
    ///
    /// The assumed quorum mirrors `SecureEngine::quorum` exactly:
    /// resilient rounds (a configured `min_users`, or a fault plan
    /// alone) can complete with as few as `min_users.unwrap_or(1)`
    /// survivors, while strict rounds need every member. Budgeting at
    /// any larger cohort would admit rounds whose *legal* realized
    /// charge exceeds the admitted worst case — and the ledger appends
    /// whatever the round actually charges.
    fn worst_case_round(&self, members: usize) -> LinearRdp {
        let resilient = self.faults.is_some() || self.config.consensus.min_users.is_some();
        let quorum = if resilient { self.config.consensus.min_users.unwrap_or(1) } else { members }
            .clamp(1, members);
        let s1 = recalibrate_sigma(self.config.consensus.sigma1, members, quorum);
        let s2 = recalibrate_sigma(self.config.consensus.sigma2, members, quorum);
        LinearRdp::sparse_vector(s1).compose(&LinearRdp::report_noisy_max(s2))
    }

    /// Drives the instance queue to completion, budget exhaustion, or a
    /// stall.
    ///
    /// The queue is the campaign: every call replays it from position 0
    /// with seed-derived randomness, which is what makes kill-and-reopen
    /// resumption exact — re-executed rounds reproduce their labels and
    /// the ledger ignores their duplicate charges. Instances whose
    /// rounds keep failing are parked (recorded in the report) rather
    /// than blocking the queue.
    ///
    /// # Errors
    ///
    /// Roster underflow, vote-shape mismatches, checkpoint-store and
    /// ledger failures, and unrecoverable round failures
    /// ([`CampaignError::Round`]: any protocol error other than the
    /// typed quorum-loss/transport liveness aborts, which burn retries
    /// and park instead). Budget exhaustion and stalls are *not* errors
    /// — they are ordinary [`CampaignStop`] outcomes in the report.
    ///
    /// # Panics
    ///
    /// Panics if a vote matrix shape disagrees with the session mid-run
    /// or a checkpoint save fails (see [`RoundSupervisor::run_round`]).
    pub fn run(
        &mut self,
        instances: &[Vec<Vec<f64>>],
        meter: Arc<Meter>,
    ) -> Result<CampaignReport, CampaignError> {
        let store: Arc<FileCheckpointStore> =
            Arc::new(FileCheckpointStore::open(self.dir.join("checkpoints"))?);
        let mut members = self.config.initial_users;
        let mut epoch = 0u64;
        let mut engine = self.build_engine(epoch, members);
        let mut round_id = 0u64;
        let mut released = Vec::new();
        let mut rounds: Vec<RoundCost> = Vec::new();
        let mut parked = Vec::new();
        let mut queried = 0usize;
        let (mut joins, mut leaves, mut crashes) = (0u64, 0u64, 0u64);
        let mut consecutive_failures = 0usize;
        let mut stop = CampaignStop::InstancesExhausted;

        'queue: for (idx, votes) in instances.iter().enumerate() {
            // Membership churn between rounds. Keys are rebuilt only
            // when the roster actually changed.
            let mut changed = false;
            for event in self.events.iter().filter(|e| e.before_instance == idx) {
                match event.change {
                    RosterChange::Join(n) => {
                        members += n;
                        joins += n as u64;
                    }
                    RosterChange::Leave(n) | RosterChange::Crash(n) => {
                        if n >= members {
                            return Err(CampaignError::RosterUnderflow {
                                at_instance: idx,
                                members,
                                leaving: n,
                            });
                        }
                        members -= n;
                        match event.change {
                            RosterChange::Leave(_) => leaves += n as u64,
                            _ => crashes += n as u64,
                        }
                    }
                }
                changed = true;
            }
            if changed {
                epoch += 1;
                engine = self.build_engine(epoch, members);
            }
            if votes.len() < members {
                return Err(CampaignError::VoteShape { instance: idx, rows: votes.len(), members });
            }
            let roster: Vec<usize> = (0..members).collect();
            let round_votes = &votes[..members];
            let worst = self.worst_case_round(members);

            let mut success = None;
            for attempt in 0..=self.config.instance_retries {
                // Admission control: an uncharged round must fit even
                // its worst case. A replayed (already-charged) round is
                // paid for — it runs only to reproduce its label.
                let already = self.ledger.charged(round_id);
                if !already && !self.ledger.admits(worst) {
                    stop = CampaignStop::BudgetExhausted {
                        refused_instance: idx,
                        worst_case_epsilon: self
                            .ledger
                            .total()
                            .compose(&worst)
                            .to_epsilon(self.config.delta),
                    };
                    break 'queue;
                }
                let mut supervisor =
                    RoundSupervisor::new(&engine, Arc::clone(&store) as Arc<dyn CheckpointStore>)
                        .with_max_attempts(self.config.max_attempts)
                        .with_start_round(round_id);
                let mut rng =
                    StdRng::seed_from_u64(mix(self.config.seed, idx as u64, attempt as u64));
                let before = meter.report();
                let before_faults: FaultStats = meter.fault_stats();
                let start = Instant::now();
                match supervisor.run_round(round_votes, &roster, Arc::clone(&meter), &mut rng) {
                    Ok(outcome) => {
                        success = Some((outcome, start.elapsed(), before, before_faults));
                        break;
                    }
                    // The typed liveness aborts — quorum loss, and
                    // transport loss on the strict path — are what the
                    // retry/park/stall machinery exists for: a failed
                    // attempt burns one retry, or falls through to park.
                    Err(SmcError::QuorumLost { .. } | SmcError::Transport(_)) => {}
                    // Everything else is deterministic (vote shapes,
                    // crypto, audit convictions): retrying cannot fix it
                    // and parking would disguise it as a stall.
                    Err(source) => {
                        return Err(CampaignError::Round { instance: idx, source });
                    }
                }
            }
            queried += 1;
            match success {
                Some((outcome, wall, before, before_faults)) => {
                    let charge = outcome.health.charged_rdp();
                    let charged = self.ledger.charge(round_id, charge)?;
                    let after = meter.report();
                    let after_faults = meter.fault_stats();
                    let (user_before, server_before, msgs_before) = link_totals(&before);
                    let (user_after, server_after, msgs_after) = link_totals(&after);
                    let cost = RoundCost {
                        round: round_id,
                        instance: idx,
                        members,
                        survivors: outcome.health.survivors.len(),
                        label: outcome.label,
                        charged,
                        epsilon_round: charge.to_epsilon(self.config.delta),
                        epsilon_total: self.ledger.epsilon_spent(),
                        wall_ms: wall.as_secs_f64() * 1e3,
                        compute_ms: (after.total_time() - before.total_time()).as_secs_f64() * 1e3,
                        user_bytes: user_after - user_before,
                        server_bytes: server_after - server_before,
                        messages: msgs_after - msgs_before,
                        resumptions: outcome.health.resumptions,
                        shards_dropped: after_faults.shards_dropped - before_faults.shards_dropped,
                    };
                    rounds.push(cost);
                    if let Some(label) = outcome.label {
                        released.push((idx, label));
                    }
                    round_id += 1;
                    consecutive_failures = 0;
                }
                None => {
                    parked.push(idx);
                    consecutive_failures += 1;
                    if consecutive_failures >= self.config.stall_threshold {
                        let shift = (consecutive_failures - 1).min(10) as u32;
                        stop = CampaignStop::Stalled(CampaignStall {
                            at_instance: idx,
                            consecutive_failures,
                            backoff: self.config.backoff_base.saturating_mul(1 << shift),
                        });
                        break 'queue;
                    }
                }
            }
        }

        Ok(CampaignReport {
            released,
            rounds,
            parked,
            queried,
            stop,
            epsilon_spent: self.ledger.epsilon_spent(),
            joins,
            leaves,
            crashes,
        })
    }
}

impl std::fmt::Debug for CampaignRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignRunner")
            .field("dir", &self.dir)
            .field("config", &self.config)
            .field("epsilon_spent", &self.ledger.epsilon_spent())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn onehot(k: usize, classes: usize) -> Vec<f64> {
        let mut v = vec![0.0; classes];
        v[k] = 1.0;
        v
    }

    fn unanimous_instances(n: usize, users: usize, classes: usize) -> Vec<Vec<Vec<f64>>> {
        (0..n).map(|i| (0..users).map(|_| onehot(i % classes, classes)).collect()).collect()
    }

    #[test]
    fn campaign_stops_at_budget() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = ConsensusConfig::paper_default(20.0, 20.0);
        let mut campaign = Campaign::new(config, 10, 3, 2.0, 1e-6).expect("valid campaign");
        let instances = unanimous_instances(2000, 10, 3);
        let outcome = campaign.run(&instances, &mut rng);
        assert_eq!(outcome.stop_reason, StopReason::BudgetExhausted);
        assert!(outcome.epsilon_spent <= 2.0, "spent {}", outcome.epsilon_spent);
        assert!(outcome.queried > 0);
        assert!(outcome.queried < instances.len());
        assert!(!campaign.can_query());
    }

    #[test]
    fn campaign_exhausts_instances_under_big_budget() {
        let mut rng = StdRng::seed_from_u64(2);
        // With σ = 20 strong consensus (10/10 votes vs T=6) nearly always
        // passes; all 10 instances fit a generous budget.
        let config = ConsensusConfig::paper_default(20.0, 20.0);
        let mut campaign = Campaign::new(config, 10, 3, 100.0, 1e-6).expect("valid campaign");
        let instances = unanimous_instances(10, 10, 3);
        let outcome = campaign.run(&instances, &mut rng);
        assert_eq!(outcome.stop_reason, StopReason::InstancesExhausted);
        assert_eq!(outcome.queried, 10);
    }

    #[test]
    fn released_labels_reference_instances() {
        let mut rng = StdRng::seed_from_u64(3);
        // σ = 0.5: unanimous 10-vote majorities clear T = 6 by 8σ, and the
        // noisy argmax never flips a 10-vote margin.
        let config = ConsensusConfig::paper_default(0.5, 0.5);
        let mut campaign = Campaign::new(config, 10, 3, 1e6, 1e-6).expect("valid campaign");
        let instances = unanimous_instances(9, 10, 3);
        let outcome = campaign.run(&instances, &mut rng);
        // Negligible noise: every unanimous instance releases its class.
        assert_eq!(outcome.released.len(), 9);
        for &(idx, label) in &outcome.released {
            assert_eq!(label, idx % 3);
        }
    }

    #[test]
    fn rejections_still_spend_budget() {
        let mut rng = StdRng::seed_from_u64(4);
        // 3-vote max vs T = 5.4 is 4.8σ below at σ = 0.5: always rejected.
        let config = ConsensusConfig::paper_default(0.5, 0.5);
        let mut campaign = Campaign::new(config, 9, 3, 1e6, 1e-6).expect("valid campaign");
        // Perfect 3-way split: always rejected, but ε must still grow.
        let split: Vec<Vec<f64>> = (0..9).map(|u| onehot(u % 3, 3)).collect();
        assert_eq!(campaign.query(&split, &mut rng), Some(None));
        assert!(campaign.epsilon_spent() > 0.0);
    }

    #[test]
    fn zero_noise_scale_is_a_typed_error() {
        let config = ConsensusConfig::paper_default(0.0, 20.0);
        match Campaign::new(config, 10, 3, 2.0, 1e-6) {
            Err(CampaignError::ZeroNoiseScale { sigma1, .. }) => assert_eq!(sigma1, 0.0),
            other => panic!("expected ZeroNoiseScale, got {other:?}"),
        }
    }

    #[test]
    fn non_positive_budget_is_a_typed_error() {
        let config = ConsensusConfig::paper_default(20.0, 20.0);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    Campaign::new(config, 10, 3, bad, 1e-6),
                    Err(CampaignError::NonPositiveBudget(_))
                ),
                "budget {bad} must be refused"
            );
        }
    }

    #[test]
    fn invalid_delta_is_a_typed_error() {
        let config = ConsensusConfig::paper_default(20.0, 20.0);
        for bad in [0.0, 1.0, -0.5, f64::NAN] {
            assert!(
                matches!(
                    Campaign::new(config, 10, 3, 2.0, bad),
                    Err(CampaignError::InvalidDelta(_))
                ),
                "delta {bad} must be refused"
            );
        }
    }

    #[test]
    fn round_cost_renders_parseable_json() {
        let cost = RoundCost {
            round: 3,
            instance: 7,
            members: 5,
            survivors: 4,
            label: Some(2),
            charged: true,
            epsilon_round: 0.125,
            epsilon_total: 0.5,
            wall_ms: 12.5,
            compute_ms: 8.25,
            user_bytes: 1024,
            server_bytes: 2048,
            messages: 99,
            resumptions: 1,
            shards_dropped: 0,
        };
        let json = cost.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in ["\"round\":3", "\"label\":2", "\"epsilon_total\":0.500000", "\"charged\":true"]
        {
            assert!(json.contains(key), "{json} missing {key}");
        }
        let rejection = RoundCost { label: None, ..cost };
        assert!(rejection.to_json().contains("\"label\":null"));
    }

    #[test]
    fn worst_case_mix_is_restart_stable() {
        // Same inputs, same seed — and distinct streams don't collide.
        assert_eq!(mix(42, 1, 2), mix(42, 1, 2));
        assert_ne!(mix(42, 1, 2), mix(42, 2, 1));
        assert_ne!(mix(42, 1, 2), mix(43, 1, 2));
    }
}
