//! Budget-gated labeling campaigns.
//!
//! The experiment pipeline answers a fixed number of queries and reports
//! the privacy spent; a *deployment* works the other way around — it is
//! given an `(ε, δ)` budget and must stop querying before exceeding it.
//! [`Campaign`] wraps the clear-path engine with a [`dp::PrivacyLedger`]
//! so every threshold decision is recorded and the next query is issued
//! only if it still fits the budget.

use dp::PrivacyLedger;
use rand::Rng;

use crate::clear::ClearEngine;
use crate::config::ConsensusConfig;

/// Why a campaign stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// All provided instances were queried.
    InstancesExhausted,
    /// The next query would exceed the ε budget.
    BudgetExhausted,
}

/// Outcome of a budget-gated campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// `(instance index, released label)` pairs, in query order.
    pub released: Vec<(usize, usize)>,
    /// Number of queries issued (answered + aborted).
    pub queried: usize,
    /// Why the campaign stopped.
    pub stop_reason: StopReason,
    /// Final privacy spend.
    pub epsilon_spent: f64,
}

/// A consensus labeling campaign under a hard `(ε, δ)` budget.
#[derive(Debug, Clone)]
pub struct Campaign {
    engine: ClearEngine,
    ledger: PrivacyLedger,
    budget_epsilon: f64,
}

impl Campaign {
    /// Creates a campaign for `num_users` voters over `num_classes`
    /// classes with the given budget.
    ///
    /// # Panics
    ///
    /// Panics if the config's noise scales are zero (infinite spend) or
    /// the budget is non-positive.
    pub fn new(
        config: ConsensusConfig,
        num_users: usize,
        num_classes: usize,
        budget_epsilon: f64,
        delta: f64,
    ) -> Self {
        assert!(budget_epsilon > 0.0, "budget must be positive");
        Campaign {
            engine: ClearEngine::new(config, num_users, num_classes),
            ledger: PrivacyLedger::new(config.sigma1, config.sigma2, delta),
            budget_epsilon,
        }
    }

    /// The ε spent so far.
    pub fn epsilon_spent(&self) -> f64 {
        self.ledger.epsilon()
    }

    /// Whether another query fits the budget.
    pub fn can_query(&self) -> bool {
        self.ledger.can_afford(self.budget_epsilon)
    }

    /// Runs one query if the budget allows. Returns `None` if the budget
    /// is exhausted, `Some(None)` for a threshold rejection, and
    /// `Some(Some(label))` for a release.
    ///
    /// # Panics
    ///
    /// Panics if the vote matrix shape disagrees with the engine.
    pub fn query<R: Rng + ?Sized>(
        &mut self,
        votes: &[Vec<f64>],
        rng: &mut R,
    ) -> Option<Option<usize>> {
        if !self.can_query() {
            return None;
        }
        let outcome = self.engine.decide(votes, rng);
        match outcome.label {
            Some(label) => {
                self.ledger.record_answered();
                Some(Some(label))
            }
            None => {
                // Conservative convention (paper): aborts charge full cost.
                self.ledger.record_answered();
                Some(None)
            }
        }
    }

    /// Queries a whole instance list (each entry: per-user vote vectors),
    /// stopping at budget exhaustion.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        instances: &[Vec<Vec<f64>>],
        rng: &mut R,
    ) -> CampaignOutcome {
        let mut released = Vec::new();
        let mut queried = 0;
        let mut stop_reason = StopReason::InstancesExhausted;
        for (idx, votes) in instances.iter().enumerate() {
            match self.query(votes, rng) {
                None => {
                    stop_reason = StopReason::BudgetExhausted;
                    break;
                }
                Some(answer) => {
                    queried += 1;
                    if let Some(label) = answer {
                        released.push((idx, label));
                    }
                }
            }
        }
        CampaignOutcome { released, queried, stop_reason, epsilon_spent: self.ledger.epsilon() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn onehot(k: usize, classes: usize) -> Vec<f64> {
        let mut v = vec![0.0; classes];
        v[k] = 1.0;
        v
    }

    fn unanimous_instances(n: usize, users: usize, classes: usize) -> Vec<Vec<Vec<f64>>> {
        (0..n).map(|i| (0..users).map(|_| onehot(i % classes, classes)).collect()).collect()
    }

    #[test]
    fn campaign_stops_at_budget() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = ConsensusConfig::paper_default(20.0, 20.0);
        let mut campaign = Campaign::new(config, 10, 3, 2.0, 1e-6);
        let instances = unanimous_instances(2000, 10, 3);
        let outcome = campaign.run(&instances, &mut rng);
        assert_eq!(outcome.stop_reason, StopReason::BudgetExhausted);
        assert!(outcome.epsilon_spent <= 2.0, "spent {}", outcome.epsilon_spent);
        assert!(outcome.queried > 0);
        assert!(outcome.queried < instances.len());
        assert!(!campaign.can_query());
    }

    #[test]
    fn campaign_exhausts_instances_under_big_budget() {
        let mut rng = StdRng::seed_from_u64(2);
        // With σ = 20 strong consensus (10/10 votes vs T=6) nearly always
        // passes; all 10 instances fit a generous budget.
        let config = ConsensusConfig::paper_default(20.0, 20.0);
        let mut campaign = Campaign::new(config, 10, 3, 100.0, 1e-6);
        let instances = unanimous_instances(10, 10, 3);
        let outcome = campaign.run(&instances, &mut rng);
        assert_eq!(outcome.stop_reason, StopReason::InstancesExhausted);
        assert_eq!(outcome.queried, 10);
    }

    #[test]
    fn released_labels_reference_instances() {
        let mut rng = StdRng::seed_from_u64(3);
        // σ = 0.5: unanimous 10-vote majorities clear T = 6 by 8σ, and the
        // noisy argmax never flips a 10-vote margin.
        let config = ConsensusConfig::paper_default(0.5, 0.5);
        let mut campaign = Campaign::new(config, 10, 3, 1e6, 1e-6);
        let instances = unanimous_instances(9, 10, 3);
        let outcome = campaign.run(&instances, &mut rng);
        // Negligible noise: every unanimous instance releases its class.
        assert_eq!(outcome.released.len(), 9);
        for &(idx, label) in &outcome.released {
            assert_eq!(label, idx % 3);
        }
    }

    #[test]
    fn rejections_still_spend_budget() {
        let mut rng = StdRng::seed_from_u64(4);
        // 3-vote max vs T = 5.4 is 4.8σ below at σ = 0.5: always rejected.
        let config = ConsensusConfig::paper_default(0.5, 0.5);
        let mut campaign = Campaign::new(config, 9, 3, 1e6, 1e-6);
        // Perfect 3-way split: always rejected, but ε must still grow.
        let split: Vec<Vec<f64>> = (0..9).map(|u| onehot(u % 3, 3)).collect();
        assert_eq!(campaign.query(&split, &mut rng), Some(None));
        assert!(campaign.epsilon_spent() > 0.0);
    }
}
