//! The clear fast path of Alg. 5.
//!
//! By Theorem 3 (correctness), the secure protocol releases exactly
//! `threshold_decision_scaled(counts, z1, z2, T)` for the aggregate noise
//! vectors the users contributed. This module computes that same function
//! directly from the users' votes and noise shares — same fixed-point
//! grid, same distributed noise statistics, no cryptography — which is
//! what the large accuracy sweeps (Figs. 2–6) run. The `secure` module's
//! tests pin the two paths to each other.

use dp::gaussian::DistributedNoise;
use rand::Rng;

use crate::algorithms::threshold_decision_scaled;
use crate::config::{scale_vote_vector, scale_votes, ConsensusConfig};

/// Per-user noise shares for one mechanism: the vector bound for S1 and
/// the vector bound for S2, already on the fixed-point grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserNoiseShares {
    /// Share embedded in the S1-bound message.
    pub for_s1: Vec<i64>,
    /// Share embedded in the S2-bound message.
    pub for_s2: Vec<i64>,
}

/// Draws one user's pair of independent noise-share vectors for a
/// mechanism with aggregate scale `sigma` (in votes): each entry of each
/// share is `N(0, σ²/(2|U|))`, scaled to the fixed-point grid.
pub fn draw_user_noise_shares<R: Rng + ?Sized>(
    sigma: f64,
    num_users: usize,
    num_classes: usize,
    rng: &mut R,
) -> UserNoiseShares {
    let dist = DistributedNoise::new(sigma, num_users);
    let mut for_s1 = Vec::with_capacity(num_classes);
    let mut for_s2 = Vec::with_capacity(num_classes);
    for _ in 0..num_classes {
        let (a, b) = dist.user_share_pair(rng);
        for_s1.push(scale_votes(a));
        for_s2.push(scale_votes(b));
    }
    UserNoiseShares { for_s1, for_s2 }
}

/// Result of one clear-path consensus query, including the aggregate
/// quantities the decision was made on (useful to cross-check the secure
/// path and to compute diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClearOutcome {
    /// The released label, or `None` when the threshold test failed.
    pub label: Option<usize>,
    /// Exact scaled vote counts `c`.
    pub counts_scaled: Vec<i64>,
    /// Aggregated scaled threshold noise `z1`.
    pub z1_scaled: Vec<i64>,
    /// Aggregated scaled argmax noise `z2`.
    pub z2_scaled: Vec<i64>,
    /// The scaled threshold `T`.
    pub threshold_scaled: i64,
}

/// Clear-path engine: applies Alg. 5's decision function per instance,
/// drawing distributed noise exactly as the users of the secure path
/// would.
#[derive(Debug, Clone)]
pub struct ClearEngine {
    config: ConsensusConfig,
    num_users: usize,
    num_classes: usize,
}

impl ClearEngine {
    /// Creates an engine for `num_users` users voting over `num_classes`
    /// classes.
    ///
    /// # Panics
    ///
    /// Panics on zero users or classes.
    pub fn new(config: ConsensusConfig, num_users: usize, num_classes: usize) -> Self {
        assert!(num_users > 0, "need at least one user");
        assert!(num_classes > 0, "need at least one class");
        ClearEngine { config, num_users, num_classes }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ConsensusConfig {
        &self.config
    }

    /// Decides one query given every user's vote vector (vote units:
    /// one-hot indicators or softmax probabilities).
    ///
    /// # Panics
    ///
    /// Panics if the vote matrix shape disagrees with the engine.
    pub fn decide<R: Rng + ?Sized>(&self, votes: &[Vec<f64>], rng: &mut R) -> ClearOutcome {
        assert_eq!(votes.len(), self.num_users, "one vote vector per user");
        let mut counts = vec![0i64; self.num_classes];
        for v in votes {
            assert_eq!(v.len(), self.num_classes, "vote arity");
            for (slot, &x) in counts.iter_mut().zip(scale_vote_vector(v).iter()) {
                *slot += x;
            }
        }
        let mut z1 = vec![0i64; self.num_classes];
        let mut z2 = vec![0i64; self.num_classes];
        for _ in 0..self.num_users {
            let s1 =
                draw_user_noise_shares(self.config.sigma1, self.num_users, self.num_classes, rng);
            let s2 =
                draw_user_noise_shares(self.config.sigma2, self.num_users, self.num_classes, rng);
            for k in 0..self.num_classes {
                z1[k] += s1.for_s1[k] + s1.for_s2[k];
                z2[k] += s2.for_s1[k] + s2.for_s2[k];
            }
        }
        let threshold_scaled = scale_votes(self.config.threshold_votes(self.num_users));
        let label = threshold_decision_scaled(&counts, &z1, &z2, threshold_scaled);
        ClearOutcome {
            label,
            counts_scaled: counts,
            z1_scaled: z1,
            z2_scaled: z2,
            threshold_scaled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn onehot(k: usize, classes: usize) -> Vec<f64> {
        let mut v = vec![0.0; classes];
        v[k] = 1.0;
        v
    }

    #[test]
    fn strong_consensus_is_released() {
        let engine = ClearEngine::new(ConsensusConfig::paper_default(0.5, 0.5), 10, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let votes: Vec<Vec<f64>> = (0..10).map(|_| onehot(2, 3)).collect();
        let out = engine.decide(&votes, &mut rng);
        assert_eq!(out.label, Some(2));
        assert_eq!(out.counts_scaled[2], 10 * 65536);
    }

    #[test]
    fn split_votes_are_rejected() {
        // 10 users split 4/3/3 against a 60% threshold, small noise.
        let engine = ClearEngine::new(ConsensusConfig::paper_default(0.3, 0.3), 10, 3);
        let mut rng = StdRng::seed_from_u64(2);
        let votes: Vec<Vec<f64>> = (0..10)
            .map(|u| {
                onehot(
                    if u < 4 {
                        0
                    } else if u < 7 {
                        1
                    } else {
                        2
                    },
                    3,
                )
            })
            .collect();
        for _ in 0..20 {
            assert_eq!(engine.decide(&votes, &mut rng).label, None);
        }
    }

    #[test]
    fn noise_totals_have_target_scale() {
        let sigma = 8.0;
        let engine = ClearEngine::new(ConsensusConfig::paper_default(sigma, sigma), 25, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let votes: Vec<Vec<f64>> = (0..25).map(|_| onehot(0, 2)).collect();
        let samples: Vec<f64> = (0..3000)
            .map(|_| engine.decide(&votes, &mut rng).z1_scaled[0] as f64 / 65536.0)
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (samples.len() - 1) as f64;
        assert!(mean.abs() < 0.6, "mean {mean}");
        assert!((var - sigma * sigma).abs() < 6.0, "var {var} vs {}", sigma * sigma);
    }

    #[test]
    fn softmax_votes_accumulate_fractionally() {
        let engine = ClearEngine::new(ConsensusConfig::paper_default(1e-9, 1e-9), 4, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let votes = vec![vec![0.7, 0.3]; 4];
        let out = engine.decide(&votes, &mut rng);
        // 4·0.7 = 2.8 votes ≥ T = 2.4 → released.
        assert_eq!(out.label, Some(0));
        assert_eq!(out.counts_scaled[0], 4 * scale_votes(0.7));
    }

    #[test]
    fn noise_shares_are_independent_across_sides() {
        let mut rng = StdRng::seed_from_u64(5);
        let shares = draw_user_noise_shares(10.0, 4, 6, &mut rng);
        assert_eq!(shares.for_s1.len(), 6);
        assert_ne!(shares.for_s1, shares.for_s2, "sides must draw independently");
    }

    #[test]
    #[should_panic(expected = "one vote vector per user")]
    fn wrong_user_count_panics() {
        let engine = ClearEngine::new(ConsensusConfig::paper_default(1.0, 1.0), 3, 2);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = engine.decide(&[vec![1.0, 0.0]], &mut rng);
    }
}
