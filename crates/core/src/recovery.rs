//! Crash recovery: durable round checkpoints, resumption, and
//! exactly-once privacy accounting.
//!
//! The secure pipeline snapshots each server's [`RoundState`] into a
//! [`CheckpointStore`] after every completed step. [`RoundSupervisor`]
//! turns those snapshots into availability: when a round attempt dies
//! (a server crash surfaces as a typed transport failure), the
//! supervisor restores the **latest consistent S1/S2 snapshot pair** —
//! the pair at `min(latest S1 step, latest S2 step)`, which both sides
//! are guaranteed to hold because snapshots are written in step order —
//! rebuilds the network, replays the round's prepared user uploads, and
//! resumes both servers at step *k* instead of aborting the round.
//!
//! What makes the recovered outcome *bit-identical* to an uninterrupted
//! run of the same round:
//!
//! * everything random is drawn once, before the first attempt
//!   ([`SecureEngine`]'s prepared round: shares, noise, payload
//!   encryptions, server seeds), and each pipeline step derives its RNG
//!   from the seed and the step ordinal rather than a rolling stream;
//! * replayed uploads are the *same ciphertexts*, injected in the same
//!   per-link order, so deterministic fault decisions keyed on
//!   (from, to, step, seq) reproduce identically — a user crash that
//!   shrank the surviving set in attempt 1 shrinks it the same way in
//!   attempt 2, re-entering the survivor-reconciliation path;
//! * server crash entries are stripped from the fault plan on retry
//!   attempts — modeling the crashed process being restarted — while
//!   user crashes persist.
//!
//! Privacy accounting is handled by [`RdpLedger`]: the realized RDP cost
//! of a round is charged exactly once per *logical* round, no matter how
//! many attempts its execution took, because the charge happens at
//! finalization keyed by the round id — never per attempt.

use std::sync::{Arc, Mutex};

use dp::rdp::LinearRdp;
use rand::Rng;
use smc::{AuditCheckpoint, CheckpointImage, RoundState, SmcError};
use transport::{CheckpointStore, FaultEvent, Meter, PartyId, Step, Wire};

use crate::secure::{SecureEngine, SecureOutcome};

/// Exactly-once RDP accounting across recovered rounds.
///
/// The ledger is keyed by round id: the first [`RdpLedger::charge`] for
/// a round records its cost, later calls for the same round are ignored.
/// A crashed-and-resumed round therefore charges its privacy budget
/// once — the invariant the chaos suite asserts per crash step.
#[derive(Debug, Default)]
pub struct RdpLedger {
    charges: Mutex<Vec<(u64, LinearRdp)>>,
}

impl RdpLedger {
    /// An empty ledger.
    pub fn new() -> RdpLedger {
        RdpLedger::default()
    }

    /// Records `cost` for `round` unless the round was already charged.
    /// Returns whether this call actually charged.
    pub fn charge(&self, round: u64, cost: LinearRdp) -> bool {
        let mut charges = self.charges.lock().expect("ledger lock");
        if charges.iter().any(|&(r, _)| r == round) {
            return false;
        }
        charges.push((round, cost));
        true
    }

    /// How many rounds have been charged.
    pub fn charges(&self) -> usize {
        self.charges.lock().expect("ledger lock").len()
    }

    /// The composed RDP cost over all charged rounds (`None` when no
    /// round has been charged yet).
    pub fn total(&self) -> Option<LinearRdp> {
        let charges = self.charges.lock().expect("ledger lock");
        let mut iter = charges.iter().map(|&(_, c)| c);
        let first = iter.next()?;
        Some(iter.fold(first, |acc, c| acc.compose(&c)))
    }
}

/// Drives logical rounds over a [`SecureEngine`] with durable
/// checkpoints and crash resumption.
///
/// Each [`RoundSupervisor::run_round`] call is one logical round with a
/// monotonically increasing round id. The round's user phase runs once;
/// each *attempt* rebuilds the network, replays the prepared uploads and
/// drives both servers from their restored states, checkpointing every
/// completed step. On success the round's checkpoints are cleared and
/// (when a ledger is attached) its realized RDP cost is charged exactly
/// once.
///
/// # Panics
///
/// A failing checkpoint *save* panics (a recovery subsystem whose
/// journal is broken must not limp along pretending to be durable).
/// Failing or corrupt *loads* degrade gracefully: the attempt restarts
/// from the beginning of the round instead of a snapshot.
pub struct RoundSupervisor<'e> {
    engine: &'e SecureEngine,
    store: Arc<dyn CheckpointStore>,
    ledger: Option<Arc<RdpLedger>>,
    max_attempts: usize,
    next_round: u64,
}

impl<'e> RoundSupervisor<'e> {
    /// Supervises `engine` with snapshots written to `store`. Defaults
    /// to 4 attempts per round and no privacy ledger.
    pub fn new(engine: &'e SecureEngine, store: Arc<dyn CheckpointStore>) -> RoundSupervisor<'e> {
        RoundSupervisor { engine, store, ledger: None, max_attempts: 4, next_round: 0 }
    }

    /// Attaches an exactly-once RDP ledger charged at round finalization.
    #[must_use]
    pub fn with_ledger(mut self, ledger: Arc<RdpLedger>) -> Self {
        self.ledger = Some(ledger);
        self
    }

    /// Caps how many attempts (1 initial + retries) a round may take.
    ///
    /// # Panics
    ///
    /// Panics when `attempts` is zero.
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: usize) -> Self {
        assert!(attempts > 0, "a round needs at least one attempt");
        self.max_attempts = attempts;
        self
    }

    /// Starts round numbering at `round` instead of 0.
    ///
    /// A restarted campaign daemon replays its instance queue from the
    /// beginning, so logical round ids must be a pure function of queue
    /// position — this pin makes them independent of how many supervisor
    /// values have existed. Durable ledgers keyed by round id then
    /// deduplicate charges across process lifetimes.
    #[must_use]
    pub fn with_start_round(mut self, round: u64) -> Self {
        self.next_round = round;
        self
    }

    /// The id the next [`RoundSupervisor::run_round`] call will use.
    pub fn next_round_id(&self) -> u64 {
        self.next_round
    }

    /// Runs one supervised round over the full user set.
    ///
    /// # Errors
    ///
    /// See [`RoundSupervisor::run_round`].
    pub fn run_instance<R: Rng + ?Sized>(
        &mut self,
        votes: &[Vec<f64>],
        meter: Arc<Meter>,
        rng: &mut R,
    ) -> Result<SecureOutcome, SmcError> {
        let roster: Vec<usize> = (0..self.engine.session_config().num_users).collect();
        self.run_round(votes, &roster, meter, rng)
    }

    /// Runs one supervised round over an explicit roster, resuming from
    /// checkpoints across up to `max_attempts` attempts.
    ///
    /// # Errors
    ///
    /// Propagates the *last* attempt's failure when every attempt died —
    /// including typed aborts like [`SmcError::QuorumLost`], which no
    /// amount of resumption can fix.
    ///
    /// # Panics
    ///
    /// Panics if the vote matrix shape disagrees with the roster, if the
    /// servers disagree on a recovered outcome, or if a checkpoint save
    /// fails.
    pub fn run_round<R: Rng + ?Sized>(
        &mut self,
        votes: &[Vec<f64>],
        roster: &[usize],
        meter: Arc<Meter>,
        rng: &mut R,
    ) -> Result<SecureOutcome, SmcError> {
        let round = self.next_round;
        self.next_round += 1;

        // Everything random for this logical round is drawn HERE, once.
        let prepared = self.engine.prepare_round(votes, roster, rng)?;
        let fault_stats_before = meter.fault_stats();
        let mut resumptions: u64 = 0;
        let mut resumed_from: Vec<Step> = Vec::new();
        let mut last_err: Option<SmcError> = None;

        for attempt in 0..self.max_attempts {
            // Attempt 1 runs under the engine's own fault plan. Retries
            // model the crashed server process being *restarted*: its
            // crash entry is stripped (re-executing the crashed step must
            // not re-enter the crash window), while user crashes persist
            // so dropouts reproduce identically.
            let plan = self.engine.fault_plan().cloned().map(|p| {
                if attempt == 0 {
                    p
                } else {
                    p.without_crash(PartyId::Server1).without_crash(PartyId::Server2)
                }
            });
            let (state1, state2, audit1, audit2) = if attempt == 0 {
                (RoundState::Start, RoundState::Start, None, None)
            } else {
                let (state1, state2, audit1, audit2) = self.restore_pair(round, &meter);
                resumptions += 1;
                resumed_from.push(state1.next_step().unwrap_or(Step::Restoration));
                meter.record_fault(FaultEvent::RoundResumed);
                (state1, state2, audit1, audit2)
            };

            let mut net = self.engine.build_network(&meter, plan);
            let mut s1 = net.take_endpoint(PartyId::Server1);
            let mut s2 = net.take_endpoint(PartyId::Server2);
            self.engine.send_uploads(&mut net, &prepared)?;
            match self.engine.drive_servers(
                &mut s1,
                &mut s2,
                &prepared,
                state1,
                state2,
                (audit1, audit2),
                round,
                Some((self.store.as_ref(), round)),
            ) {
                Ok((done1, done2)) => {
                    let outcome = self.engine.finalize_round(
                        &prepared,
                        done1,
                        done2,
                        &meter,
                        fault_stats_before,
                        resumptions,
                        resumed_from,
                    );
                    if let Some(ledger) = &self.ledger {
                        ledger.charge(round, outcome.health.charged_rdp());
                    }
                    // A completed round's snapshots are dead weight; a
                    // failing cleanup is not worth failing the round for.
                    let _ = self.store.clear_round(round);
                    return Ok(outcome);
                }
                Err(err) => last_err = Some(err),
            }
        }
        Err(last_err.expect("at least one attempt ran"))
    }

    /// The latest consistent snapshot pair for `round`: both servers'
    /// states at `min(latest S1 step, latest S2 step)`. Snapshots are
    /// written in step order, so the slower side's latest step is held by
    /// both. Missing or undecodable snapshots degrade to a from-scratch
    /// restart — never a panic, never a half-restored pair. Each side's
    /// audit commitments ride in the same image so a resumed challenge
    /// round re-verifies against the seeds committed before the crash.
    #[allow(clippy::type_complexity)]
    fn restore_pair(
        &self,
        round: u64,
        meter: &Meter,
    ) -> (RoundState, RoundState, Option<AuditCheckpoint>, Option<AuditCheckpoint>) {
        let fresh = || (RoundState::Start, RoundState::Start, None, None);
        let latest = |party| self.store.load_latest(round, party).ok().flatten();
        let (Some(c1), Some(c2)) = (latest(PartyId::Server1), latest(PartyId::Server2)) else {
            return fresh();
        };
        let step = c1.step.min(c2.step);
        let at = |party, ckpt: transport::Checkpoint| {
            let payload = if ckpt.step == step {
                Some(ckpt.payload)
            } else {
                self.store.load_at(round, party, step).ok().flatten().map(|c| c.payload)
            };
            payload.and_then(|p| CheckpointImage::from_bytes(p.into()).ok())
        };
        match (at(PartyId::Server1, c1), at(PartyId::Server2, c2)) {
            (Some(i1), Some(i2)) => {
                meter.record_fault(FaultEvent::CheckpointRestored);
                meter.record_fault(FaultEvent::CheckpointRestored);
                (i1.state, i2.state, i1.audit, i2.audit)
            }
            _ => fresh(),
        }
    }
}

impl std::fmt::Debug for RoundSupervisor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundSupervisor")
            .field("engine", self.engine)
            .field("max_attempts", &self.max_attempts)
            .field("next_round", &self.next_round)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_charges_each_round_once() {
        let ledger = RdpLedger::new();
        let cost = LinearRdp::sparse_vector(1e-6);
        assert!(ledger.charge(0, cost));
        assert!(!ledger.charge(0, cost), "second charge for round 0 must be ignored");
        assert!(ledger.charge(1, cost));
        assert_eq!(ledger.charges(), 2);
        let total = ledger.total().expect("two charges composed");
        assert_eq!(total, cost.compose(&cost));
    }

    #[test]
    fn empty_ledger_has_no_total() {
        assert!(RdpLedger::new().total().is_none());
        assert_eq!(RdpLedger::new().charges(), 0);
    }
}
