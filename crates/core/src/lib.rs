//! **Private consensus for privacy-preserving decentralized learning** —
//! a Rust reproduction of the ICDCS 2020 paper.
//!
//! `|U|` users each train a teacher model on private data; an aggregator
//! labels public instances by the teachers' majority vote — but only when
//! a *noisy* vote count clears a threshold, and revealing nothing except
//! the winning label. The pieces:
//!
//! * [`config`] — protocol configuration: threshold fraction, noise
//!   scales `(σ₁, σ₂)`, vote kind (one-hot vs softmax), fixed-point
//!   scaling;
//! * [`algorithms`] — the paper's plaintext algorithms: Alg. 1
//!   (Aggregation of Teacher Ensembles), Alg. 4 (its differentially
//!   private version), and the *baseline* of §VI-C (noisy max without
//!   threshold);
//! * [`clear`] — the clear fast path of Alg. 5: identical decision
//!   function, distributed noise and fixed-point arithmetic, but without
//!   the cryptography — used by the large accuracy sweeps;
//! * [`secure`] — the full Alg. 5: users secret-share votes to two
//!   servers, which run secure sum, Blind-and-Permute, DGK comparisons,
//!   threshold check and Restoration over real channels;
//! * [`recovery`] — crash-recoverable rounds: durable per-step
//!   checkpoints, a resuming round supervisor, and exactly-once RDP
//!   accounting across resumptions;
//! * [`reactor`] — the multi-session consensus reactor: each round as a
//!   pollable state machine over session-tagged frames, a fair
//!   round-robin scheduler with admission control, deadline watchdogs
//!   and overload shedding, with per-session fault isolation;
//! * [`campaign`] — budget-gated labeling campaigns, from the in-memory
//!   clear-path [`Campaign`] to the durable [`CampaignRunner`] daemon
//!   with its crash-safe RDP ledger, roster churn, and per-round cost
//!   telemetry;
//! * [`pipeline`] — end-to-end experiment drivers (teachers → consensus
//!   labeling → student) for the single-label and multi-label workloads.
//!
//! # Examples
//!
//! ```
//! use consensus_core::algorithms::private_aggregate;
//! use consensus_core::config::ConsensusConfig;
//!
//! let mut rng = rand::thread_rng();
//! let config = ConsensusConfig::new(0.6, 1e-9, 1e-9); // negligible noise
//! // 10 users, 3 classes, 8 votes for class 1.
//! let counts = [1.0, 8.0, 1.0];
//! let out = private_aggregate(&counts, 10, &config, &mut rng);
//! assert_eq!(out, Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod campaign;
pub mod clear;
pub mod config;
pub mod pipeline;
pub mod reactor;
pub mod recovery;
pub mod secure;

pub use campaign::{
    Campaign, CampaignConfig, CampaignError, CampaignOutcome, CampaignReport, CampaignRunner,
    CampaignStall, CampaignStop, RosterChange, RosterEvent, RoundCost, StopReason,
};
pub use config::{ConsensusConfig, VoteKind};
pub use pipeline::{ExperimentOutcome, LabelingMode};
pub use reactor::{
    Reactor, ReactorConfig, RejectReason, SessionMachine, SessionPoll, SessionRejected,
    SessionResult,
};
pub use recovery::{RdpLedger, RoundSupervisor};
pub use secure::{ConsensusFingerprint, RoundHealth, SecureEngine, SecureOutcome, SecureWitness};
