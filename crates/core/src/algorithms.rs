//! The paper's plaintext algorithms.
//!
//! * [`aggregate`] — Alg. 1, Aggregation of Teacher Ensembles: return the
//!   top label iff its (exact) vote count reaches the threshold.
//! * [`private_aggregate`] — Alg. 4, the differentially private variant:
//!   Sparse-Vector threshold test with `σ₁` noise, then Report Noisy Max
//!   with `σ₂`.
//! * [`baseline_noisy_max`] — the evaluation section's baseline: "the
//!   aggregator simply aggregates all noisy votes and picks the highest
//!   one as the label", i.e. Report Noisy Max with no threshold.
//! * [`threshold_decision_scaled`] — the fixed-point integer decision
//!   function shared verbatim by the clear and secure paths of Alg. 5
//!   (Theorem 3: the secure path computes exactly this, in blind).

use dp::mechanisms::{noisy_argmax, plain_argmax};
use rand::Rng;

use crate::config::ConsensusConfig;

/// Alg. 1 — plain aggregation with threshold. Returns the top label, or
/// `None` (`⊥`) if its count is below `T = threshold_fraction·|U|`.
///
/// # Panics
///
/// Panics if `counts` is empty.
pub fn aggregate(counts: &[f64], num_users: usize, config: &ConsensusConfig) -> Option<usize> {
    let i_star = plain_argmax(counts);
    if counts[i_star] >= config.threshold_votes(num_users) {
        Some(i_star)
    } else {
        None
    }
}

/// Alg. 4 — Private Aggregation of Teacher Ensembles: releases
/// `argmax_i(c_i + N(0, σ₂²))` iff `c_{i*} + N(0, σ₁²) ≥ T`.
///
/// # Panics
///
/// Panics if `counts` is empty.
pub fn private_aggregate<R: Rng + ?Sized>(
    counts: &[f64],
    num_users: usize,
    config: &ConsensusConfig,
    rng: &mut R,
) -> Option<usize> {
    let i_star = plain_argmax(counts);
    let noise = dp::Gaussian::new(0.0, config.sigma1).sample(rng);
    if counts[i_star] + noise >= config.threshold_votes(num_users) {
        Some(noisy_argmax(counts, config.sigma2, rng))
    } else {
        None
    }
}

/// The §VI-C baseline: Report Noisy Max with **no** threshold — every
/// query is answered. Uses the same `σ₂` (and, for privacy parity in the
/// experiments, the baseline is granted the same total privacy budget).
///
/// # Panics
///
/// Panics if `counts` is empty.
pub fn baseline_noisy_max<R: Rng + ?Sized>(
    counts: &[f64],
    config: &ConsensusConfig,
    rng: &mut R,
) -> usize {
    noisy_argmax(counts, config.sigma2, rng)
}

/// The scaled-integer decision function of Alg. 5.
///
/// Inputs are on the `2^16` fixed-point grid: exact vote counts
/// `counts`, aggregated threshold noise vector `z1`, aggregated argmax
/// noise vector `z2`, and the scaled threshold. Returns the released
/// label or `None`.
///
/// The secure protocol computes exactly this function (correctness,
/// Theorem 3): step 4 finds `argmax(counts)`, step 5 tests
/// `counts[i*] + z1[i*] ≥ T`, step 8 finds `argmax(counts + z2)`.
///
/// # Panics
///
/// Panics if the vectors are empty or disagree in length.
pub fn threshold_decision_scaled(
    counts: &[i64],
    z1: &[i64],
    z2: &[i64],
    threshold_scaled: i64,
) -> Option<usize> {
    assert!(!counts.is_empty(), "counts must be non-empty");
    assert_eq!(counts.len(), z1.len(), "z1 arity");
    assert_eq!(counts.len(), z2.len(), "z2 arity");
    let i_star = argmax_i64(counts);
    if counts[i_star] + z1[i_star] >= threshold_scaled {
        let noisy: Vec<i64> = counts.iter().zip(z2).map(|(&c, &z)| c + z).collect();
        Some(argmax_i64(&noisy))
    } else {
        None
    }
}

/// First-maximum argmax over `i64` values.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn argmax_i64(values: &[i64]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    let mut best = 0usize;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn alg1_threshold_gate() {
        let config = ConsensusConfig::paper_default(1.0, 1.0);
        // 10 users, threshold 6 votes.
        assert_eq!(aggregate(&[1.0, 7.0, 2.0], 10, &config), Some(1));
        assert_eq!(aggregate(&[1.0, 6.0, 3.0], 10, &config), Some(1)); // ≥ T
        assert_eq!(aggregate(&[4.0, 5.0, 1.0], 10, &config), None);
    }

    #[test]
    fn alg4_reduces_to_alg1_with_tiny_noise() {
        let config = ConsensusConfig::paper_default(1e-12, 1e-12);
        let mut r = rng();
        for counts in [[1.0, 8.0, 1.0], [3.0, 3.0, 4.0], [9.0, 0.0, 1.0]] {
            assert_eq!(
                private_aggregate(&counts, 10, &config, &mut r),
                aggregate(&counts, 10, &config),
                "counts {counts:?}"
            );
        }
    }

    #[test]
    fn alg4_threshold_rejects_weak_consensus() {
        let config = ConsensusConfig::paper_default(2.0, 2.0);
        let mut r = rng();
        // 100 users, threshold 60; top vote 30 is ~15σ below the bar.
        let rejections = (0..200)
            .filter(|_| {
                private_aggregate(&[30.0, 25.0, 45.0 - 30.0], 100, &config, &mut r).is_none()
            })
            .count();
        assert_eq!(rejections, 200, "deep-below-threshold queries must all abort");
    }

    #[test]
    fn baseline_always_answers() {
        let config = ConsensusConfig::paper_default(5.0, 1e-12);
        let mut r = rng();
        // Even a hopeless 1-1-1 split gets a label from the baseline.
        let l = baseline_noisy_max(&[1.0, 1.0, 1.0], &config, &mut r);
        assert!(l < 3);
        assert_eq!(baseline_noisy_max(&[0.0, 9.0, 0.0], &config, &mut r), 1);
    }

    #[test]
    fn scaled_decision_matches_float_semantics() {
        // 10 users, T = 6 votes = 393216 scaled.
        let t = 6 * 65536;
        let counts = [2 * 65536i64, 7 * 65536, 65536];
        let zeros = [0i64; 3];
        assert_eq!(threshold_decision_scaled(&counts, &zeros, &zeros, t), Some(1));
        // Noise pushes the max under the threshold.
        let z1 = [0i64, -2 * 65536, 0];
        assert_eq!(threshold_decision_scaled(&counts, &z1, &zeros, t), None);
        // z2 flips the released label without affecting the gate.
        let z2 = [6 * 65536i64, 0, 0];
        assert_eq!(threshold_decision_scaled(&counts, &zeros, &z2, t), Some(0));
    }

    #[test]
    fn decision_uses_true_argmax_for_the_gate() {
        // The gate checks c[i*] + z1[i*] with i* from the *unnoised*
        // counts, per Alg. 5 step 4-5.
        let t = 5 * 65536;
        let counts = [4 * 65536i64, 6 * 65536];
        // Huge z1 on the loser must not help.
        let z1 = [100 * 65536i64, -2 * 65536];
        let zeros = [0i64; 2];
        assert_eq!(threshold_decision_scaled(&counts, &z1, &zeros, t), None);
    }

    #[test]
    fn argmax_first_max_wins() {
        assert_eq!(argmax_i64(&[3, 7, 7, 1]), 1);
        assert_eq!(argmax_i64(&[-5]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_counts_panic() {
        let _ = threshold_decision_scaled(&[], &[], &[], 0);
    }
}
