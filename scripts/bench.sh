#!/usr/bin/env bash
# Performance snapshot: runs the criterion microbenches in quick mode and
# the bench_protocol binary, which emits the machine-readable
# BENCH_protocol.json (step → ns/iter) at the repo root — the artifact
# the perf trajectory is tracked by (see DESIGN.md, "Exponentiation
# strategy").
#
# Usage: scripts/bench.sh [--smoke] [--offline] [--threads N] [--audit] [--batch] [--scale]
#
#   --smoke      minimal iteration counts and no criterion sweep — the CI
#                wiring (scripts/ci.sh) uses this to keep the harness from
#                rotting without burning CI minutes on real measurements.
#   --offline    point cargo at the .localdeps/ shims (sandboxes without
#                crates.io access, same mechanism as scripts/devcheck.sh).
#                The criterion shim executes each bench closure once
#                without timing, so only bench_protocol produces numbers.
#   --threads N  forward a worker-thread count to bench_protocol's
#                data-parallel sweep (default: the CONSENSUS_THREADS
#                environment variable, else 1).
#   --audit      also time the full engine round with the covert-security
#                audit layer off vs. on (audit_off_/audit_on_ rows in
#                BENCH_protocol.json).
#   --batch      also run the batched-kernel ablation (Straus multi-exp,
#                Karatsuba Montgomery product, fixed CRT recombination,
#                batched pool refill and DGK zero test, k ∈ {1,4,16,64}).
#   --scale      also run the simulated streaming-ingest scale sweep
#                (|U| ∈ {100k, 300k, 1M} × shard counts, scale_* rows
#                with bytes/user, throughput and VmHWM/VmRSS) plus the
#                survivor-intersection ablation at |U| = 10k. Under
#                --smoke the sweep shrinks to |U| = 2k.
#
# After writing the JSON, scripts/check_bench.sh asserts the kernel
# invariants (CRT decrypt beats plain, batched kernels no slower at k=1)
# — warn-only under --smoke, where iteration counts are too low to trust.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

smoke=0
offline=0
audit=0
batch=0
scale=0
threads=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=1 ;;
    --offline) offline=1 ;;
    --audit) audit=1 ;;
    --batch) batch=1 ;;
    --scale) scale=1 ;;
    --threads)
      [[ $# -ge 2 ]] || { echo "--threads needs a value" >&2; exit 2; }
      threads="$2"
      shift
      ;;
    *)
      echo "usage: $0 [--smoke] [--offline] [--threads N] [--audit] [--batch] [--scale]" >&2
      exit 2
      ;;
  esac
  shift
done

config=()
cargo_flags=()
if [[ $offline -eq 1 ]]; then
  for dep in rand bytes crossbeam parking_lot serde proptest criterion; do
    config+=(--config "patch.crates-io.${dep}.path=\"${repo}/.localdeps/${dep}\"")
  done
  cargo_flags+=(--offline)
fi

if [[ $smoke -eq 0 ]]; then
  echo "==> criterion microbenches (quick mode)"
  for bench in bigint_ops paillier_ops dgk_compare protocol_steps; do
    cargo "${config[@]}" bench -p benches --bench "$bench" "${cargo_flags[@]}" -- --quick
  done
fi

echo "==> bench_protocol → BENCH_protocol.json"
protocol_args=(--out "$repo/BENCH_protocol.json")
if [[ $smoke -eq 1 ]]; then
  protocol_args+=(--smoke)
fi
if [[ -n $threads ]]; then
  protocol_args+=(--threads "$threads")
fi
if [[ $audit -eq 1 ]]; then
  protocol_args+=(--audit)
fi
if [[ $batch -eq 1 ]]; then
  protocol_args+=(--batch)
fi
if [[ $scale -eq 1 ]]; then
  protocol_args+=(--scale)
fi
cargo "${config[@]}" run --release -p benches --bin bench_protocol "${cargo_flags[@]}" \
  -- "${protocol_args[@]}"

check_args=("$repo/BENCH_protocol.json")
if [[ $smoke -eq 1 ]]; then
  check_args=(--warn-only "${check_args[@]}")
fi
bash "$repo/scripts/check_bench.sh" "${check_args[@]}"

echo "bench artifacts written to $repo/BENCH_protocol.json"
