#!/usr/bin/env bash
# The repository's CI gate, for machines with crates.io access:
#
#   1. cargo fmt --check          — formatting (rustfmt.toml at the root)
#   2. cargo clippy -D warnings   — lints, all targets
#   3. cargo build --release      — the tier-1 build
#   4. cargo test                 — the tier-1 test suite
#
# In offline sandboxes where the third-party crates cannot be fetched,
# use scripts/devcheck.sh instead — same checks, pointed at the
# functional shims in .localdeps/.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> crash-recovery smoke (1 crash step, 2 seeds)"
cargo test -q -p consensus-core --test recovery recovery_smoke_two_seeds

echo "==> tcp transport smoke (fingerprint parity + mid-round connection kill, 2 seeds)"
cargo test -q -p consensus-core --test chaos tcp_backend_matches_inproc_fingerprint
cargo test -q -p consensus-core --test recovery tcp_connection_kill_recovers_two_seeds

echo "==> covert-audit smoke (strict conviction + resilient clean abort, 2 seeds)"
cargo test -q -p consensus-core --test audit audit_smoke_two_seeds

echo "==> sharded aggregation smoke (fingerprint parity across shard/thread counts)"
cargo test -q -p consensus-core --test shard

echo "==> campaign-soak smoke (2 seeds, kill at seed-derived rounds, exactly-once charges)"
cargo test -q -p consensus-core --test campaign campaign_soak_smoke

echo "==> multi-session reactor smoke (16 concurrent sessions, 2 seeds)"
cargo test -q -p consensus-core --test reactor sixteen_session_smoke

echo "==> bench harness smoke (scripts/bench.sh --smoke --batch --scale, 2 worker threads)"
bash scripts/bench.sh --smoke --threads 2 --batch --scale

echo "CI checks passed."
