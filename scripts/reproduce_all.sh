#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the ablations.
# Results land in results/<name>.txt. Expect ~20-40 minutes total on a
# laptop; pass extra flags through, e.g.  ./scripts/reproduce_all.sh --rounds 3
set -euo pipefail
cd "$(dirname "$0")/.."

EXTRA_ARGS=("$@")
mkdir -p results

cargo build --release --workspace

run() {
    local name="$1"
    shift
    echo "== $name =="
    cargo run --release -p benches --bin "$name" -- "$@" "${EXTRA_ARGS[@]}" \
        | tee "results/$name.txt"
    echo
}

run table1_costs
run table2_comm_costs
run fig2_user_accuracy
run fig3_consensus_vs_baseline
run fig4_onehot_softmax
run fig5_threshold_sweep
run fig5_uneven
run fig6_celeba
run table3_retention
run ablation_rounds

echo "== criterion ablation benches =="
cargo bench -p benches | tee results/criterion.txt

echo "All results written to results/."
