#!/usr/bin/env bash
# Asserts the kernel invariants BENCH_protocol.json must uphold: the CRT
# decrypt path beats the plain one, and every batched/fixed kernel is no
# slower than its predecessor at k = 1 (125% tolerance absorbs timer
# noise on loaded machines). Rows the file does not carry (e.g. a run
# without --batch) are noted and skipped, never failed.
#
# Usage: check_bench.sh [--warn-only] [FILE]
#   --warn-only  print verdicts but always exit 0 (smoke/CI trend mode)
#   FILE         defaults to BENCH_protocol.json in the current directory
set -euo pipefail

warn_only=0
file=BENCH_protocol.json
for arg in "$@"; do
  case "$arg" in
    --warn-only) warn_only=1 ;;
    *) file="$arg" ;;
  esac
done

if [[ ! -f "$file" ]]; then
  echo "check_bench: $file not found" >&2
  exit 1
fi

# Pull the ns figure of one step. Keys are matched fully quoted so e.g.
# "ablation_multiexp_iter_k1" never collides with its k16/k64 siblings.
ns_of() {
  awk -v key="\"$1\":" '
    index($0, key) {
      s = $0
      sub(/.*"ns":[ ]*/, "", s)
      sub(/[^0-9].*/, "", s)
      print s
      exit
    }
  ' "$file"
}

fails=0

# check NEW OLD TOL_PCT DESC — fail when ns(NEW)*100 > ns(OLD)*TOL_PCT.
check() {
  local new=$1 old=$2 tol=$3 desc=$4 new_ns old_ns
  new_ns=$(ns_of "$new")
  old_ns=$(ns_of "$old")
  if [[ -z "$new_ns" || -z "$old_ns" ]]; then
    echo "  skip  ${desc} (missing row: ${new} or ${old})"
    return
  fi
  if (( new_ns * 100 > old_ns * tol )); then
    echo "  FAIL  ${desc}: ${new}=${new_ns}ns vs ${old}=${old_ns}ns (limit ${tol}%)"
    fails=$((fails + 1))
  else
    echo "  ok    ${desc}: ${new}=${new_ns}ns vs ${old}=${old_ns}ns"
  fi
}

echo "check_bench: ${file}"
check paillier_decrypt_crt paillier_decrypt 100 \
  "CRT decrypt faster than plain decrypt"
check ablation_multiexp_straus_k1 ablation_multiexp_iter_k1 125 \
  "Straus multi-exp no slower than iterated modpow at k=1"
check ablation_mont_mul_karatsuba_4096 ablation_mont_mul_school_4096 125 \
  "Karatsuba Montgomery product no slower than schoolbook"
check ablation_crt_recombine_fixed ablation_crt_recombine_gcd 125 \
  "fixed Garner recombination no slower than extended-gcd CRT"
check ablation_pool_refill_batched_k1 ablation_pool_refill_k1 125 \
  "batched pool refill no slower than per-item refill at k=1"
check ablation_dgk_zero_batch_k1 ablation_dgk_zero_loop_k1 125 \
  "batched DGK zero test no slower than per-item loop at k=1"

if (( fails > 0 )); then
  if (( warn_only )); then
    echo "check_bench: ${fails} regression(s) — warn-only mode, exiting 0"
    exit 0
  fi
  echo "check_bench: ${fails} regression(s)" >&2
  exit 1
fi
echo "check_bench: all kernel invariants hold"
