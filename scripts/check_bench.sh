#!/usr/bin/env bash
# Asserts the kernel invariants BENCH_protocol.json must uphold: the CRT
# decrypt path beats the plain one, every batched/fixed kernel is no
# slower than its predecessor at k = 1 (125% tolerance absorbs timer
# noise on loaded machines), the sorted-merge survivor intersection beats
# the linear scan it replaced, across the --scale sweep sharded
# streaming never costs more than flat + 5% bytes/user at equal |U|, and
# the campaign daemon telemetry (campaign_summary + campaign_round_*) is
# present with a positive rounds/sec and a monotone epsilon trajectory,
# and the multi-session reactor row (reactor_sessions) carries a
# positive sessions/sec with p99 round latency no smaller than p50.
# Rows the file does not carry (e.g. a run without --batch or --scale)
# are noted and skipped, never failed. When the meta object says the box
# has one core, thread-sweep rows get a warning: their scaling curves are
# flat by construction, not by regression.
#
# Usage: check_bench.sh [--warn-only] [FILE]
#   --warn-only  print verdicts but always exit 0 (smoke/CI trend mode)
#   FILE         defaults to BENCH_protocol.json in the current directory
set -euo pipefail

warn_only=0
file=BENCH_protocol.json
for arg in "$@"; do
  case "$arg" in
    --warn-only) warn_only=1 ;;
    *) file="$arg" ;;
  esac
done

if [[ ! -f "$file" ]]; then
  echo "check_bench: $file not found" >&2
  exit 1
fi

# Pull the ns figure of one step. Keys are matched fully quoted so e.g.
# "ablation_multiexp_iter_k1" never collides with its k16/k64 siblings.
ns_of() {
  awk -v key="\"$1\":" '
    index($0, key) {
      s = $0
      sub(/.*"ns":[ ]*/, "", s)
      sub(/[^0-9].*/, "", s)
      print s
      exit
    }
  ' "$file"
}

# Pull one numeric field out of a named JSON object row (scale_*, meta).
field_of() {
  awk -v key="\"$1\":" -v field="\"$2\":" '
    index($0, key) && index($0, field) {
      s = $0
      sub(".*" field "[ ]*", "", s)
      sub(/[,}].*/, "", s)
      print s
      exit
    }
  ' "$file"
}

fails=0

# check NEW OLD TOL_PCT DESC — fail when ns(NEW)*100 > ns(OLD)*TOL_PCT.
check() {
  local new=$1 old=$2 tol=$3 desc=$4 new_ns old_ns
  new_ns=$(ns_of "$new")
  old_ns=$(ns_of "$old")
  if [[ -z "$new_ns" || -z "$old_ns" ]]; then
    echo "  skip  ${desc} (missing row: ${new} or ${old})"
    return
  fi
  if (( new_ns * 100 > old_ns * tol )); then
    echo "  FAIL  ${desc}: ${new}=${new_ns}ns vs ${old}=${old_ns}ns (limit ${tol}%)"
    fails=$((fails + 1))
  else
    echo "  ok    ${desc}: ${new}=${new_ns}ns vs ${old}=${old_ns}ns"
  fi
}

echo "check_bench: ${file}"
check paillier_decrypt_crt paillier_decrypt 100 \
  "CRT decrypt faster than plain decrypt"
check ablation_multiexp_straus_k1 ablation_multiexp_iter_k1 125 \
  "Straus multi-exp no slower than iterated modpow at k=1"
check ablation_mont_mul_karatsuba_4096 ablation_mont_mul_school_4096 125 \
  "Karatsuba Montgomery product no slower than schoolbook"
check ablation_crt_recombine_fixed ablation_crt_recombine_gcd 125 \
  "fixed Garner recombination no slower than extended-gcd CRT"
check ablation_pool_refill_batched_k1 ablation_pool_refill_k1 125 \
  "batched pool refill no slower than per-item refill at k=1"
check ablation_dgk_zero_batch_k1 ablation_dgk_zero_loop_k1 125 \
  "batched DGK zero test no slower than per-item loop at k=1"

# Survivor-intersection ablation (full runs record |U| = 10k, smoke 2k):
# the sorted merge must beat the linear scan outright.
for ab in 10000 2000; do
  if [[ -n "$(ns_of "ablation_survivor_intersect_sorted_u${ab}")" ]]; then
    check "ablation_survivor_intersect_sorted_u${ab}" \
      "ablation_survivor_intersect_linear_u${ab}" 100 \
      "sorted-merge survivor intersection beats linear scan at |U|=${ab}"
    break
  fi
done

# Scale sweep: at equal |U|, sharded streaming may exceed the flat
# bytes/user only by the amortized shard-aggregate flow (5% tolerance).
for key in $(grep -o '"scale_u[0-9]*_s[0-9]*"' "$file" | tr -d '"'); do
  users="${key#scale_u}"; users="${users%%_s*}"
  shards="${key##*_s}"
  [[ "$shards" == "1" ]] && continue
  flat_bpu=$(field_of "scale_u${users}_s1" bytes_per_user)
  shard_bpu=$(field_of "$key" bytes_per_user)
  if [[ -z "$flat_bpu" || -z "$shard_bpu" ]]; then
    echo "  skip  sharded-vs-flat bytes/user at |U|=${users} (missing flat row)"
    continue
  fi
  if awk -v s="$shard_bpu" -v f="$flat_bpu" 'BEGIN { exit !(s * 100 > f * 105) }'; then
    echo "  FAIL  sharded bytes/user exceeds flat+5% at |U|=${users} shards=${shards}: ${shard_bpu} vs ${flat_bpu}"
    fails=$((fails + 1))
  else
    echo "  ok    sharded bytes/user within flat+5% at |U|=${users} shards=${shards}: ${shard_bpu} vs ${flat_bpu}"
  fi
done

# Campaign daemon telemetry: every bench run drives a short durable
# campaign, so the campaign_* rows must be present and sane — a summary
# with a positive rounds/sec, and a per-round epsilon trajectory that is
# positive and non-decreasing (the durable ledger only ever composes).
camp_rps=$(field_of campaign_summary rounds_per_sec)
if [[ -z "$camp_rps" ]]; then
  echo "  FAIL  campaign_summary row missing (campaign telemetry not emitted)"
  fails=$((fails + 1))
elif awk -v r="$camp_rps" 'BEGIN { exit !(r <= 0) }'; then
  echo "  FAIL  campaign rounds/sec not positive: ${camp_rps}"
  fails=$((fails + 1))
else
  echo "  ok    campaign summary present (${camp_rps} rounds/sec)"
fi
camp_rounds=$(field_of campaign_summary rounds)
eps_prev=0
eps_rows=0
eps_bad=0
for ((r = 0; r < ${camp_rounds:-0}; r++)); do
  eps=$(field_of "campaign_round_${r}" epsilon_total)
  [[ -z "$eps" ]] && continue
  eps_rows=$((eps_rows + 1))
  if awk -v e="$eps" -v p="$eps_prev" 'BEGIN { exit !(e <= 0 || e < p) }'; then
    eps_bad=$((eps_bad + 1))
  fi
  eps_prev="$eps"
done
if [[ -z "$camp_rounds" ]] || (( eps_rows < camp_rounds )); then
  echo "  FAIL  campaign epsilon trajectory incomplete: ${eps_rows}/${camp_rounds:-?} campaign_round_* rows"
  fails=$((fails + 1))
elif (( eps_bad > 0 )); then
  echo "  FAIL  campaign epsilon trajectory not positive/monotone (${eps_bad} bad rows)"
  fails=$((fails + 1))
else
  echo "  ok    campaign epsilon trajectory monotone over ${eps_rows} rounds (final ${eps_prev})"
fi

# Multi-session reactor: every bench run multiplexes 100+ concurrent
# sessions (16 in smoke) through the reactor, so the reactor_sessions
# row must be present with a positive throughput and an internally
# consistent latency distribution (p99 never below p50).
reactor_sps=$(field_of reactor_sessions sessions_per_sec)
if [[ -z "$reactor_sps" ]]; then
  echo "  FAIL  reactor_sessions row missing (multi-session telemetry not emitted)"
  fails=$((fails + 1))
elif awk -v r="$reactor_sps" 'BEGIN { exit !(r <= 0) }'; then
  echo "  FAIL  reactor sessions/sec not positive: ${reactor_sps}"
  fails=$((fails + 1))
else
  echo "  ok    reactor throughput present (${reactor_sps} sessions/sec)"
fi
reactor_p50=$(field_of reactor_sessions p50_ns)
reactor_p99=$(field_of reactor_sessions p99_ns)
if [[ -z "$reactor_p50" || -z "$reactor_p99" ]]; then
  echo "  FAIL  reactor_sessions latency percentiles missing (p50/p99)"
  fails=$((fails + 1))
elif awk -v lo="$reactor_p50" -v hi="$reactor_p99" 'BEGIN { exit !(hi < lo) }'; then
  echo "  FAIL  reactor round latency p99 below p50: ${reactor_p99} < ${reactor_p50}"
  fails=$((fails + 1))
else
  echo "  ok    reactor round latency p50 ${reactor_p50} ns <= p99 ${reactor_p99} ns"
fi

# Thread sweeps on a single-core box are flat by construction, not by
# regression — say so rather than letting a trend line cry wolf.
cores=$(field_of meta available_cores)
if [[ "${cores:-0}" == "1" ]] && grep -q '"par_[a-z0-9_]*_t[2-9][0-9]*"' "$file"; then
  echo "  warn  thread-sweep rows were measured on a single-core machine; scaling curves are flat by construction"
fi

if (( fails > 0 )); then
  if (( warn_only )); then
    echo "check_bench: ${fails} regression(s) — warn-only mode, exiting 0"
    exit 0
  fi
  echo "check_bench: ${fails} regression(s)" >&2
  exit 1
fi
echo "check_bench: all kernel invariants hold"
