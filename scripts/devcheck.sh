#!/usr/bin/env bash
# Offline development check. In sandboxes with no crates.io access the
# third-party dependencies cannot be fetched; this script points cargo at
# the functional shims in .localdeps/ (see .localdeps/README.md) via CLI
# --config patches, leaving the real manifests untouched. On a networked
# machine just use scripts/ci.sh instead.
#
# Usage: scripts/devcheck.sh [check|test|clippy|fmt] [extra cargo args...]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cmd="${1:-test}"
shift || true

config=()
for dep in rand bytes crossbeam parking_lot serde proptest criterion; do
  config+=(--config "patch.crates-io.${dep}.path=\"${repo}/.localdeps/${dep}\"")
done

case "$cmd" in
  check)
    cargo "${config[@]}" check --workspace --all-targets --offline "$@"
    ;;
  test)
    cargo "${config[@]}" test --workspace --offline "$@"
    ;;
  clippy)
    # `cargo clippy` re-executes itself as an external subcommand and
    # drops global --config flags, so the .localdeps patches never apply.
    # Drive clippy through `cargo check` with the workspace wrapper
    # instead — identical lints, patches intact.
    RUSTC_WORKSPACE_WRAPPER="$(command -v clippy-driver)" CLIPPY_ARGS="-Dwarnings" \
      cargo "${config[@]}" check --workspace --all-targets --offline "$@"
    ;;
  fmt)
    cargo fmt --all -- --check
    ;;
  *)
    echo "usage: $0 [check|test|clippy|fmt] [extra cargo args...]" >&2
    exit 2
    ;;
esac
