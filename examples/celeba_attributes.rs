//! Multi-label consensus on the CelebA surrogate: 40 sparse binary
//! attributes voted on independently, reproducing the paper's Fig. 6
//! observation — contested *positive* attributes are the ones that fail
//! consensus, pushing released label vectors toward all-negative.
//!
//! Run: `cargo run --release -p consensus-core --example celeba_attributes`

use consensus_core::config::ConsensusConfig;
use consensus_core::pipeline::{MultiLabelExperiment, MultiLabelPolicy, PartitionKind};
use mlsim::model::TrainConfig;
use mlsim::partition::Division;
use mlsim::synthetic::SparseAttributeSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(19);
    let spec = SparseAttributeSpec::celeba_like();

    println!("CelebA-like workload: 40 binary attributes, positive rate ≈ 0.15\n");
    println!(
        "{:<8} {:<14} {:>14} {:>12} {:>10}",
        "users", "distribution", "consensus rate", "label acc", "agg acc"
    );
    for users in [10usize, 50, 100] {
        for (name, kind) in
            [("even", PartitionKind::Even), ("2-8", PartitionKind::Uneven(Division::D28))]
        {
            let mut exp =
                MultiLabelExperiment::new(spec, users, ConsensusConfig::paper_default(2.0, 2.0))
                    .with_partition(kind);
            exp.train_size = 2000;
            exp.public_size = 120;
            exp.test_size = 400;
            exp.train_config = TrainConfig { epochs: 12, ..TrainConfig::default() };
            let out = exp.run(&mut rng);
            println!(
                "{:<8} {:<14} {:>14.3} {:>12.3} {:>10.3}",
                users,
                name,
                out.consensus_rate.unwrap_or(0.0),
                out.label_stats.label_accuracy,
                out.aggregator_accuracy
            );
        }
    }

    println!("\nAblation: the strict all-attributes retention policy");
    let mut exp = MultiLabelExperiment::new(spec, 25, ConsensusConfig::paper_default(2.0, 2.0));
    exp.policy = MultiLabelPolicy::AllAttributes;
    exp.train_size = 2000;
    exp.public_size = 120;
    exp.test_size = 400;
    exp.train_config = TrainConfig { epochs: 12, ..TrainConfig::default() };
    let strict = exp.run(&mut rng);
    println!(
        "all-attributes policy at 25 users: retention {:.3} (a sample is dropped unless every \
         one of its 40 attributes reaches consensus)",
        strict.label_stats.retention()
    );
    println!(
        "\nSparse positives are exactly the attributes that fail consensus, so the released \
         vectors drift toward the all-negative majority — the overfitting mechanism the paper \
         reports on CelebA."
    );
}
