//! Quickstart: the full decentralized-learning loop in one page.
//!
//! Ten users train teachers on private shards of a synthetic 10-class
//! problem; the aggregator labels public instances through the private
//! consensus protocol (clear fast path) and trains a student on whatever
//! survives the threshold.
//!
//! Run: `cargo run --release -p consensus-core --example quickstart`

use consensus_core::config::ConsensusConfig;
use consensus_core::pipeline::{LabelingMode, SingleLabelExperiment};
use mlsim::synthetic::GaussianMixtureSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // σ1 = σ2 = 3 votes of Gaussian noise; threshold = 60% of users.
    // 50 users on the noisy-margin workload: teachers disagree often,
    // which is exactly when the consensus filter earns its keep.
    let config = ConsensusConfig::paper_default(3.0, 3.0);
    let mut experiment = SingleLabelExperiment::new(GaussianMixtureSpec::mnist_like(), 50, config);
    experiment.train_size = 5000;
    experiment.public_size = 300;
    experiment.test_size = 500;

    println!("== Private consensus (Alg. 5 semantics) ==");
    let outcome = experiment.clone().run(&mut rng);
    println!("mean teacher accuracy: {:.3}", outcome.user_accuracy.mean);
    println!(
        "released {}/{} public instances (retention {:.2})",
        outcome.label_stats.retained,
        outcome.label_stats.queried,
        outcome.label_stats.retention()
    );
    println!("label accuracy:       {:.3}", outcome.label_stats.label_accuracy);
    println!("aggregator accuracy:  {:.3}", outcome.aggregator_accuracy);
    println!("privacy spent:        ε = {:.2} at δ = 1e-6", outcome.epsilon);

    println!("\n== Baseline (noisy max on every query, same DP scheme, no threshold) ==");
    let baseline = experiment.with_mode(LabelingMode::Baseline).run(&mut rng);
    println!("label accuracy:       {:.3}", baseline.label_stats.label_accuracy);
    println!("aggregator accuracy:  {:.3}", baseline.aggregator_accuracy);
    println!("privacy spent:        ε = {:.2} at δ = 1e-6", baseline.epsilon);

    println!(
        "\nThe consensus protocol filters low-agreement queries, so its released labels \
         are cleaner than the baseline's — the baseline is forced to answer even the \
         queries where the teachers cannot agree."
    );
}
