//! Privacy accounting tour: how the Rényi-DP curves of the consensus
//! protocol compose, what Theorem 5 guarantees per query, how a privacy
//! ledger gates a labeling campaign against a fixed budget — and how
//! the *durable* campaign daemon survives a kill -9 with its epsilon
//! intact.
//!
//! Run: `cargo run --release -p consensus-core --example privacy_budget`

use consensus_core::campaign::{CampaignConfig, CampaignRunner, CampaignStop};
use consensus_core::config::ConsensusConfig;
use dp::rdp::{consensus_epsilon, sigma_for_epsilon, LinearRdp, PrivacyLedger};
use transport::Meter;

fn main() {
    println!("== Per-query guarantee (Theorem 5) ==");
    println!("{:<10} {:<10} {:>12}", "sigma1", "sigma2", "epsilon(1e-6)");
    for sigma in [10.0, 20.0, 40.0, 80.0, 160.0] {
        println!("{sigma:<10} {sigma:<10} {:>12.4}", consensus_epsilon(sigma, sigma, 1e-6));
    }

    println!("\n== Composition over a labeling campaign ==");
    let sigma = 40.0;
    let per_query = LinearRdp::sparse_vector(sigma).compose(&LinearRdp::report_noisy_max(sigma));
    println!("{:<10} {:>12} {:>18}", "queries", "epsilon", "naive k*eps1");
    let one = per_query.to_epsilon(1e-6);
    for k in [1u64, 10, 100, 755, 1000] {
        println!("{k:<10} {:>12.3} {:>18.3}", per_query.repeat(k).to_epsilon(1e-6), one * k as f64);
    }
    println!("(RDP composition grows ~sqrt(k), far better than naive linear composition)");

    println!("\n== Calibrating noise to a target ε ==");
    for (target, k) in [(2.0, 1000u64), (8.19, 1000), (20.0, 1000)] {
        let s = sigma_for_epsilon(target, 1e-6, k);
        println!("target ε = {target:<6} over {k} queries  →  σ1 = σ2 = {s:.1} votes");
    }

    println!("\n== Ledger with a hard budget ==");
    let mut ledger = PrivacyLedger::new(40.0, 40.0, 1e-6);
    let budget = 4.0;
    let mut answered = 0u64;
    while ledger.can_afford(budget) {
        ledger.record_answered();
        answered += 1;
    }
    println!(
        "budget ε ≤ {budget}: answered {answered} queries, final spend ε = {:.3}",
        ledger.epsilon()
    );

    println!("\n== Durable campaign daemon: kill -9, resume, budget refusal ==");
    let dir = std::env::temp_dir().join(format!("privacy-budget-daemon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // σ = 1.5 with quorum 2 of 5 spends ε fast enough to watch: worst-case
    // admission refuses the fourth query against a budget of ε ≤ 40.
    let campaign_budget = 40.0;
    let config = CampaignConfig::new(
        ConsensusConfig::paper_default(1.5, 1.5).with_min_users(2),
        5,
        3,
        campaign_budget,
        1e-6,
    )
    .with_seed(0xDAE5);
    let onehot = |k: usize| {
        let mut v = vec![0.0; 3];
        v[k] = 1.0;
        v
    };
    let instances: Vec<Vec<Vec<f64>>> = (0..6).map(|i| vec![onehot(i % 3); 5]).collect();

    // First lifetime: answer two queries, then the process "dies" — the
    // runner is dropped with the queue unfinished. The only durable state
    // is the campaign directory.
    let mut daemon = CampaignRunner::open(&dir, config.clone()).expect("open campaign");
    let first = daemon.run(&instances[..2], Meter::new()).expect("first lifetime");
    let eps_at_kill = first.epsilon_spent;
    println!(
        "lifetime 1: answered {} queries, ε = {:.3}, then kill -9",
        first.released.len(),
        eps_at_kill
    );
    drop(daemon);

    // Second lifetime: reopening the directory replays the ledger journal,
    // so admission control resumes at the exact epsilon already spent.
    let mut daemon = CampaignRunner::open(&dir, config).expect("reopen campaign");
    assert_eq!(daemon.epsilon_spent().to_bits(), eps_at_kill.to_bits());
    println!("lifetime 2: reopened, ε resumes bitwise-equal at {:.3}", daemon.epsilon_spent());

    // Re-running the full queue replays the two paid rounds (same labels,
    // charged = false — the ledger refuses duplicate charges) and then
    // stops at the first query whose worst-case spend would overshoot.
    let report = daemon.run(&instances, Meter::new()).expect("second lifetime");
    for row in report.telemetry_json() {
        println!("  {row}");
    }
    match report.stop {
        CampaignStop::BudgetExhausted { refused_instance, worst_case_epsilon } => println!(
            "refused query {refused_instance}: worst-case ε = {worst_case_epsilon:.2} exceeds \
             budget {campaign_budget} (spent ε = {:.3}, never overdrawn)",
            report.epsilon_spent
        ),
        other => println!("unexpected stop: {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
