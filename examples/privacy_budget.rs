//! Privacy accounting tour: how the Rényi-DP curves of the consensus
//! protocol compose, what Theorem 5 guarantees per query, and how a
//! privacy ledger gates a labeling campaign against a fixed budget.
//!
//! Run: `cargo run --release -p consensus-core --example privacy_budget`

use dp::rdp::{consensus_epsilon, sigma_for_epsilon, LinearRdp, PrivacyLedger};

fn main() {
    println!("== Per-query guarantee (Theorem 5) ==");
    println!("{:<10} {:<10} {:>12}", "sigma1", "sigma2", "epsilon(1e-6)");
    for sigma in [10.0, 20.0, 40.0, 80.0, 160.0] {
        println!("{sigma:<10} {sigma:<10} {:>12.4}", consensus_epsilon(sigma, sigma, 1e-6));
    }

    println!("\n== Composition over a labeling campaign ==");
    let sigma = 40.0;
    let per_query = LinearRdp::sparse_vector(sigma).compose(&LinearRdp::report_noisy_max(sigma));
    println!("{:<10} {:>12} {:>18}", "queries", "epsilon", "naive k*eps1");
    let one = per_query.to_epsilon(1e-6);
    for k in [1u64, 10, 100, 755, 1000] {
        println!("{k:<10} {:>12.3} {:>18.3}", per_query.repeat(k).to_epsilon(1e-6), one * k as f64);
    }
    println!("(RDP composition grows ~sqrt(k), far better than naive linear composition)");

    println!("\n== Calibrating noise to a target ε ==");
    for (target, k) in [(2.0, 1000u64), (8.19, 1000), (20.0, 1000)] {
        let s = sigma_for_epsilon(target, 1e-6, k);
        println!("target ε = {target:<6} over {k} queries  →  σ1 = σ2 = {s:.1} votes");
    }

    println!("\n== Ledger with a hard budget ==");
    let mut ledger = PrivacyLedger::new(40.0, 40.0, 1e-6);
    let budget = 4.0;
    let mut answered = 0u64;
    while ledger.can_afford(budget) {
        ledger.record_answered();
        answered += 1;
    }
    println!(
        "budget ε ≤ {budget}: answered {answered} queries, final spend ε = {:.3}",
        ledger.epsilon()
    );
}
