//! Secure session: runs the *actual* two-server cryptographic protocol
//! (Paillier secure sums, Blind-and-Permute, DGK comparisons, threshold
//! check, Restoration) over in-process channels for a few queries, then
//! prints the per-step cost tables.
//!
//! Run: `cargo run --release -p consensus-core --example secure_session`

use std::sync::Arc;

use consensus_core::config::ConsensusConfig;
use consensus_core::secure::SecureEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smc::SessionConfig;
use transport::Meter;

fn onehot(k: usize, classes: usize) -> Vec<f64> {
    let mut v = vec![0.0; classes];
    v[k] = 1.0;
    v
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let (users, classes) = (5usize, 4usize);

    println!("Provisioning session keys (Paillier x2 + DGK)...");
    let engine = SecureEngine::new(
        SessionConfig::test(users, classes),
        ConsensusConfig::paper_default(0.5, 0.5),
        &mut rng,
    );
    let meter = Meter::new();

    // Query 1: strong consensus — 4 of 5 users vote class 2.
    let strong: Vec<Vec<f64>> =
        (0..users).map(|u| onehot(if u < 4 { 2 } else { 0 }, classes)).collect();
    let out = engine.run_instance(&strong, Arc::clone(&meter), &mut rng).expect("protocol run");
    println!(
        "strong vote  (4/5 for class 2): released label = {:?} (exact counts {:?})",
        out.label, out.witness.counts_scaled
    );

    // Query 2: three-way split — should be rejected at the threshold.
    let split: Vec<Vec<f64>> = (0..users).map(|u| onehot(u % 3, classes)).collect();
    let out = engine.run_instance(&split, Arc::clone(&meter), &mut rng).expect("protocol run");
    println!(
        "split vote   (2/2/1):           released label = {:?} (threshold rejected)",
        out.label
    );

    let report = meter.report();
    println!("\n--- per-step running time (Table I form) ---");
    print!("{}", report.render_table1());
    println!("\n--- per-step message volume (Table II form) ---");
    print!("{}", report.render_table2());
    println!(
        "\nNote the Secure Comparison steps dominating both tables, exactly as in the \
         paper: each of the K(K-1)/2 ranking comparisons encrypts the operands bit by bit."
    );
}
