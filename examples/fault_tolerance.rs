//! Dropout-resilient consensus under injected faults.
//!
//! Runs three secure rounds of the same 5-user query while user 3 is
//! crashed before its first upload, then shows the typed abort when the
//! quorum cannot be met. Demonstrates the `RoundHealth` record: who
//! survived, the noise scale actually realized, and the honest RDP
//! charge for each round. Finally, crashes a *server* mid-round and
//! lets the `RoundSupervisor` resume it from durable checkpoints — the
//! recovered result is bit-identical to an uninterrupted round, and its
//! privacy budget is charged exactly once.
//!
//! Three more fault classes round out the tour: hostile upload
//! encodings (replays, wrong arity, malformed ciphertexts) refused at
//! the door with their `rejected_*` counters surfaced on the meter, a
//! mid-round TCP connection kill that the socket transport heals by
//! reconnect-and-replay without the protocol ever noticing, and an
//! *equivocating server* convicted by the covert-security audit layer
//! with a typed `AuditFailure` naming the guilty party and step.
//!
//! ```bash
//! cargo run --release -p consensus-core --example fault_tolerance
//! ```

use std::sync::Arc;
use std::time::Duration;

use bigint::Ubig;
use consensus_core::config::ConsensusConfig;
use consensus_core::recovery::{RdpLedger, RoundSupervisor};
use consensus_core::secure::SecureEngine;
use paillier::Ciphertext;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smc::{AuditPolicy, SessionConfig, SessionKeys, SmcError, UploadValidator};
use transport::{
    FaultPlan, MemoryCheckpointStore, Meter, PartyId, Step, TcpConfig, TimeoutPolicy,
    TransportBackend,
};

fn main() {
    let users = 5;
    let classes = 3;
    let mut rng = StdRng::seed_from_u64(42);
    println!("generating session keys ({users} users, {classes} classes)...");
    let keys = SessionKeys::generate(SessionConfig::test(users, classes), &mut rng);
    let delta = 1e-6;
    let config = ConsensusConfig::paper_default(1.0, 1.0).with_min_users(3);

    // User 3 crashes before it can upload anything.
    let plan = FaultPlan::new(7).crash(PartyId::User(3), Step::SecureSumVotes);
    let engine = SecureEngine::with_keys(keys.clone(), config)
        .with_timeout(TimeoutPolicy::with_retries(Duration::from_millis(100), 1, 2.0))
        .with_fault_plan(plan);

    // Three rounds of the same unanimous query: the roster shrinks after
    // round 1 and the remaining users recalibrate their noise shares.
    let instance: Vec<Vec<f64>> = (0..users).map(|_| vec![0.0, 1.0, 0.0]).collect();
    let instances = vec![instance.clone(), instance.clone(), instance];
    println!("\n== three rounds with user 3 crashed (quorum 3) ==");
    let meter = Meter::new();
    let outcomes = engine.run_batch(&instances, meter.clone(), &mut rng).expect("quorum holds");
    for (i, out) in outcomes.iter().enumerate() {
        let h = &out.health;
        println!(
            "round {}: label={:?} roster={:?} survivors={:?} dropouts={:?}",
            i + 1,
            out.label,
            h.intended_users,
            h.survivors,
            h.dropouts,
        );
        println!(
            "         realized σ1={:.4} σ2={:?} clean={} ε_charged={:.4}",
            h.realized_sigma1,
            h.realized_sigma2,
            h.is_clean(),
            h.charged_rdp().to_epsilon(delta),
        );
    }

    print!("\n{}", meter.report().render_fault_summary());

    // Crash three of five users: below the quorum, both servers abort
    // with the same typed error instead of releasing a 2-user consensus.
    println!("\n== mass crash below quorum ==");
    let plan = FaultPlan::new(8)
        .crash(PartyId::User(1), Step::SecureSumVotes)
        .crash(PartyId::User(2), Step::SecureSumVotes)
        .crash(PartyId::User(3), Step::SecureSumVotes);
    let engine = SecureEngine::with_keys(
        keys.clone(),
        ConsensusConfig::paper_default(1.0, 1.0).with_min_users(3),
    )
    .with_timeout(TimeoutPolicy::with_retries(Duration::from_millis(100), 1, 2.0))
    .with_fault_plan(plan);
    let instance: Vec<Vec<f64>> = (0..users).map(|_| vec![0.0, 1.0, 0.0]).collect();
    match engine.run_instance(&instance, Meter::new(), &mut rng) {
        Err(SmcError::QuorumLost { step, survivors, required }) => {
            println!(
                "typed abort: quorum lost at {step} — {survivors} survivors < {required} required"
            );
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    // Crash server 2 in the middle of the secure-comparison step. The
    // supervisor restores the latest consistent checkpoint pair, strips
    // the server crash (the process was "restarted"), replays the
    // round's prepared uploads and resumes — and the recovered result
    // matches an uninterrupted round of the same seed bit for bit.
    println!("\n== server crash mid-round, recovered from checkpoints ==");
    let config = ConsensusConfig::paper_default(1.0, 1.0).with_min_users(3);
    let baseline_engine = SecureEngine::with_keys(keys.clone(), config)
        .with_timeout(TimeoutPolicy::with_retries(Duration::from_millis(100), 1, 2.0));
    let mut baseline_rng = StdRng::seed_from_u64(77);
    let baseline = baseline_engine
        .run_instance(&instance, Meter::new(), &mut baseline_rng)
        .expect("baseline round completes");

    let crash_plan = FaultPlan::new(9).crash(PartyId::Server2, Step::CompareRank);
    let engine = SecureEngine::with_keys(keys.clone(), config)
        .with_timeout(TimeoutPolicy::with_retries(Duration::from_millis(100), 1, 2.0))
        .with_fault_plan(crash_plan);
    let ledger = Arc::new(RdpLedger::new());
    let mut supervisor = RoundSupervisor::new(&engine, Arc::new(MemoryCheckpointStore::new()))
        .with_ledger(Arc::clone(&ledger));
    let meter = Meter::new();
    let mut crash_rng = StdRng::seed_from_u64(77);
    let recovered =
        supervisor.run_instance(&instance, meter.clone(), &mut crash_rng).expect("round recovered");

    let h = &recovered.health;
    println!(
        "recovered: label={:?} resumptions={} resumed_from={:?}",
        recovered.label, h.resumptions, h.resumed_from
    );
    let stats = meter.fault_stats();
    println!(
        "checkpoints: saved={} restored={} rounds_resumed={}",
        stats.checkpoints_saved, stats.checkpoints_restored, stats.rounds_resumed
    );
    println!(
        "bit-identical to the uninterrupted round: {}",
        recovered.consensus_fingerprint() == baseline.consensus_fingerprint()
    );
    println!(
        "privacy charged exactly once: {} charge(s), ε={:.4}",
        ledger.charges(),
        ledger.total().expect("one round charged").to_epsilon(delta)
    );

    // Hostile encodings never reach the homomorphic pipeline: a replayed
    // sequence number, a wrong-arity vector and a malformed ciphertext
    // are each refused at the door of the server that cannot decrypt
    // them, and every refusal lands on a `rejected_*` meter counter.
    println!("\n== adversarial uploads rejected at the door ==");
    let key = keys.server1().peer_public().clone();
    let good: Vec<Ciphertext> =
        (0..classes).map(|_| key.encrypt(&Ubig::from(1u64), &mut rng).expect("encrypt")).collect();
    let meter = Meter::new();
    let mut validator = UploadValidator::new(classes);
    validator
        .check(&meter, PartyId::User(0), Step::SecureSumVotes, 1, &good, &key)
        .expect("a well-formed upload passes");
    let replay = validator.check(&meter, PartyId::User(0), Step::SecureSumVotes, 1, &good, &key);
    println!("replayed sequence:    {}", replay.unwrap_err());
    let arity =
        validator.check(&meter, PartyId::User(1), Step::SecureSumVotes, 1, &good[..1], &key);
    println!("truncated vector:     {}", arity.unwrap_err());
    let mut hostile = good.clone();
    hostile[0] = Ciphertext::from_raw(Ubig::from(0u64));
    let malformed =
        validator.check(&meter, PartyId::User(2), Step::SecureSumVotes, 2, &hostile, &key);
    println!("malformed ciphertext: {}", malformed.unwrap_err());
    print!("\n{}", meter.report().render_fault_summary());

    // The same story over real loopback sockets: a chaos proxy severs
    // the server spine mid-frame, the link layer redials and replays
    // from the last acknowledged sequence number, and the round lands on
    // the in-proc fingerprint without the protocol ever seeing a
    // dropout.
    println!("\n== mid-round connection kill over real TCP sockets ==");
    let inproc_engine =
        SecureEngine::with_keys(keys.clone(), config).with_timeout(TimeoutPolicy::fast_local());
    let mut tcp_rng = StdRng::seed_from_u64(91);
    let inproc = inproc_engine
        .run_instance(&instance, Meter::new(), &mut tcp_rng)
        .expect("in-proc reference completes");

    let sever_plan = FaultPlan::new(11).sever_connection(PartyId::Server1, PartyId::Server2, 2_000);
    let tcp_engine = SecureEngine::with_keys(keys.clone(), config)
        .with_timeout(TimeoutPolicy::fast_local())
        .with_fault_plan(sever_plan)
        .with_transport(TransportBackend::Tcp(TcpConfig::fast_local()));
    let meter = Meter::new();
    let mut tcp_rng = StdRng::seed_from_u64(91);
    let tcp = tcp_engine
        .run_instance(&instance, meter.clone(), &mut tcp_rng)
        .expect("tcp round completes");
    let stats = meter.fault_stats();
    println!("reconnects={} dropouts={:?}", stats.reconnects, tcp.health.dropouts);
    println!(
        "tcp fingerprint matches in-proc: {}",
        tcp.consensus_fingerprint() == inproc.consensus_fingerprint()
    );
    print!("\n{}", meter.report().render_fault_summary());

    // Finally, a server that *deviates from the protocol itself*: S2
    // equivocates during the second Blind-and-Permute, attesting one
    // transcript to the audit layer while putting a different ciphertext
    // on the wire. The round is a challenge round (challenge rate 1.0),
    // so S1 opens S2's commitment, replays its draws, spots the
    // divergence before decrypting anything derived from it, and
    // convicts with a typed abort naming the guilty party and step.
    println!("\n== equivocating server convicted by the audit layer ==");
    let byz_plan = FaultPlan::new(13).equivocate(PartyId::Server2, Step::BlindPermute2);
    let audit_engine = SecureEngine::with_keys(keys, config)
        .with_timeout(TimeoutPolicy::with_retries(Duration::from_millis(100), 1, 2.0))
        .with_fault_plan(byz_plan)
        .with_audit(AuditPolicy::strict());
    let meter = Meter::new();
    let mut audit_rng = StdRng::seed_from_u64(101);
    match audit_engine.run_instance(&instance, meter.clone(), &mut audit_rng) {
        Err(SmcError::AuditFailure { party, step, evidence }) => {
            println!("typed abort: {party} convicted at {step}");
            println!("evidence:    {evidence}");
        }
        other => println!("unexpected outcome: {other:?}"),
    }
    let stats = meter.fault_stats();
    println!(
        "audit counters: challenges={} failures={} equivocations={}",
        stats.audit_challenges, stats.audit_failures, stats.equivocation_detected
    );
    print!("\n{}", meter.report().render_fault_summary());
}
