//! Threshold tuning: sweeps the consensus threshold on a small workload
//! and shows the paper's Fig. 5(a/b) effect — the best aggregator
//! accuracy sits at a *middle* threshold, because low thresholds admit
//! noisy labels while high thresholds starve the student of samples.
//!
//! Run: `cargo run --release -p consensus-core --example threshold_tuning`

use consensus_core::config::ConsensusConfig;
use consensus_core::pipeline::SingleLabelExperiment;
use mlsim::model::TrainConfig;
use mlsim::synthetic::GaussianMixtureSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let users = 25;
    let sigma = 2.0;

    println!("Sweeping thresholds on svhn-like, {users} users, σ = {sigma} votes\n");
    println!("{:<10} {:>10} {:>12} {:>12}", "threshold", "retention", "label acc", "agg acc");
    let mut best = (0.0f64, 0.0f64);
    for t in [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let mut exp = SingleLabelExperiment::new(
            GaussianMixtureSpec::svhn_like(),
            users,
            ConsensusConfig::new(t, sigma, sigma),
        );
        exp.train_size = 2500;
        exp.public_size = 300;
        exp.test_size = 500;
        exp.train_config = TrainConfig { epochs: 20, ..TrainConfig::default() };
        let out = exp.run(&mut rng);
        println!(
            "{:<10} {:>10.3} {:>12.3} {:>12.3}",
            format!("{:.0}%", t * 100.0),
            out.label_stats.retention(),
            out.label_stats.label_accuracy,
            out.aggregator_accuracy
        );
        if out.aggregator_accuracy > best.1 {
            best = (t, out.aggregator_accuracy);
        }
    }
    println!(
        "\nBest threshold: {:.0}% (aggregator accuracy {:.3}) — retention falls and label \
         accuracy rises as the threshold climbs; the product peaks in the middle.",
        best.0 * 100.0,
        best.1
    );
}
